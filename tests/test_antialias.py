"""Supersampled remap (anti-aliasing) tests."""

import numpy as np
import pytest

from repro.core.antialias import SupersampledLUT, minification_map, supersample_field
from repro.core.mapping import identity_map, perspective_map
from repro.core.remap import RemapLUT
from repro.errors import MappingError


def scaling_builder(scale, src=64):
    """A pure minification map: output samples source at ``scale``x spacing."""

    def build(xs, ys):
        return xs * scale, ys * scale, src, src

    return build


class TestSupersampleField:
    def test_subgrid_shape(self):
        field = supersample_field(scaling_builder(1.0), 8, 6, factor=3)
        assert field.shape == (18, 24)

    def test_factor_one_matches_plain_grid(self):
        field = supersample_field(scaling_builder(1.0), 8, 8, factor=1)
        np.testing.assert_allclose(field.map_x[0], np.arange(8.0), atol=1e-12)

    def test_subsamples_centred_on_pixel(self):
        field = supersample_field(scaling_builder(1.0), 4, 4, factor=2)
        # pixel 0's two sub-samples at -0.25 and +0.25
        assert field.map_x[0, 0] == pytest.approx(-0.25)
        assert field.map_x[0, 1] == pytest.approx(0.25)
        # their mean recovers the pixel centre
        assert field.map_x[0, :2].mean() == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(MappingError):
            supersample_field(scaling_builder(1.0), 8, 8, factor=0)
        with pytest.raises(MappingError):
            supersample_field(scaling_builder(1.0), 0, 8, factor=2)


class TestSupersampledLUT:
    def _lut(self, scale, out=16, factor=2, src=64, method="bilinear"):
        sub = supersample_field(scaling_builder(scale), out, out, factor)
        return SupersampledLUT(sub, out, out, factor, method=method)

    def test_identity_scale_reproduces_image(self, rng):
        img = rng.integers(0, 255, (64, 64), dtype=np.uint8)
        lut = self._lut(1.0, out=16, factor=1)
        plain = RemapLUT(supersample_field(scaling_builder(1.0), 16, 16, 1)).apply(img)
        np.testing.assert_array_equal(lut.apply(img), plain)

    def test_reduces_aliasing_on_minification(self):
        # a 4x-minified fine checkerboard: point sampling keeps full-contrast
        # aliases; 4x supersampling box-averages toward the true mean
        from repro.video.synth import checkerboard

        img = checkerboard(64, 64, square=2, low=0, high=255)
        point = self._lut(4.0, out=16, factor=1).apply(img)
        ssaa = self._lut(4.0, out=16, factor=4).apply(img)
        true_mean = 127.5
        assert np.abs(ssaa.astype(float) - true_mean).mean() < \
            np.abs(point.astype(float) - true_mean).mean()

    def test_constant_image_unchanged(self):
        # offset the map so every sub-sample stays inside the source
        # (edge sub-samples of an unshifted map fall outside and mix in
        # the constant fill — correct, but not what this test probes)
        def build(xs, ys):
            return xs * 2.0 + 2.0, ys * 2.0 + 2.0, 64, 64

        img = np.full((64, 64), 88, dtype=np.uint8)
        out = SupersampledLUT.from_builder(build, 16, 16, factor=3).apply(img)
        np.testing.assert_array_equal(out, 88)

    def test_edge_subsamples_mix_fill(self):
        # the complementary behaviour: out-of-source sub-samples at the
        # frame edge dilute toward the fill value
        img = np.full((64, 64), 88, dtype=np.uint8)
        out = self._lut(2.0, factor=3).apply(img)
        assert out[0, 0] < 88
        assert out[8, 8] == 88

    def test_taps_scale_with_factor(self):
        assert self._lut(1.0, factor=2).taps == 4 * 4
        assert self._lut(1.0, factor=3, method="nearest").taps == 9

    def test_out_buffer(self, rng):
        img = rng.integers(0, 255, (64, 64), dtype=np.uint8)
        lut = self._lut(2.0)
        buf = np.empty((16, 16), dtype=np.uint8)
        assert lut.apply(img, out=buf) is buf

    def test_multichannel(self, rng):
        img = rng.integers(0, 255, (64, 64, 3), dtype=np.uint8)
        out = self._lut(2.0).apply(img)
        assert out.shape == (16, 16, 3)

    def test_shape_validation(self):
        sub = supersample_field(scaling_builder(1.0), 8, 8, 2)
        with pytest.raises(MappingError):
            SupersampledLUT(sub, 8, 8, factor=3)

    def test_from_builder(self, rng):
        img = rng.integers(0, 255, (64, 64), dtype=np.uint8)
        lut = SupersampledLUT.from_builder(scaling_builder(2.0), 16, 16, factor=2)
        assert lut.apply(img).shape == (16, 16)


class TestMinificationMap:
    def test_identity_is_one(self):
        m = minification_map(identity_map(16, 16))
        np.testing.assert_allclose(m, 1.0, atol=1e-9)

    def test_uniform_scale(self):
        f = identity_map(16, 16)
        scaled = type(f)(f.map_x * 3.0, f.map_y * 3.0, 48, 48)
        np.testing.assert_allclose(minification_map(scaled), 3.0, atol=1e-9)

    def test_fisheye_correction_minifies_periphery(self, small_sensor, small_lens,
                                                   small_out):
        field = perspective_map(small_sensor, small_lens, small_out)
        m = minification_map(field)
        centre = m[30:34, 30:34].mean()
        edge = np.nanmean(m[31:33, 2:6])
        # the zoom-0.5 view minifies at the centre and *magnifies*
        # (minification < centre value) toward the periphery, where the
        # equidistant lens packed more pixels per degree than perspective
        assert centre == pytest.approx(2.0, abs=0.1)
        assert not np.isnan(edge)
