"""Golden-value regression tests for the deterministic platform models.

The models are pure functions of their parameters and the (seeded,
deterministic) coordinate fields, so their outputs are pinned exactly.
A legitimate model change must regenerate the goldens — rerun the
generation snippet documented in ``tests/golden/model_outputs.json``'s
sibling comment below — and justify the diff in the commit.

Regenerate with:

    python - <<'EOF'
    # (see repository history: the generator enumerates VGA/720p x
    #  lut/otf over sequential, xeon16, cell, gtx280, fpga)
    EOF
"""

import json
import os

import pytest

from repro.accel import presets
from repro.bench.harness import standard_workload

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden",
                           "model_outputs.json")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


CASES = ["VGA/lut", "VGA/otf", "720p/lut", "720p/otf"]


def _workload(case):
    res, mode = case.split("/")
    return standard_workload(res, mode=mode)


@pytest.mark.parametrize("case", CASES)
class TestWorkloadMeasurements:
    def test_coverage(self, case, golden):
        w = _workload(case)
        assert w.coverage == pytest.approx(golden[case]["workload"]["coverage"],
                                           rel=1e-9)

    def test_source_footprint(self, case, golden):
        w = _workload(case)
        assert w.source_footprint == pytest.approx(
            golden[case]["workload"]["source_footprint"], rel=1e-9)

    def test_gather_lines(self, case, golden):
        w = _workload(case)
        assert w.gather_lines_per_warp == pytest.approx(
            golden[case]["workload"]["gather_lines_per_warp"], rel=1e-9)


@pytest.mark.parametrize("case", CASES)
class TestModelOutputs:
    def test_sequential(self, case, golden):
        w = _workload(case)
        rep = presets.sequential_reference().estimate_frame(w, threads=1)
        assert rep.frame_ns == golden[case]["sequential_frame_ns"]

    def test_xeon16_scaling_points(self, case, golden):
        w = _workload(case)
        smp = presets.xeon_modern()
        for t, expected in golden[case]["xeon16_frame_ns"].items():
            assert smp.estimate_frame(w, threads=int(t)).frame_ns == expected

    def test_cell_configurations(self, case, golden):
        w = _workload(case)
        cell = presets.cell_ps3()
        g = golden[case]["cell_frame_ns"]
        assert cell.simulate(w, spes=1, double_buffering=False).frame_ns == g["1_single"]
        assert cell.simulate(w, spes=6, double_buffering=False).frame_ns == g["6_single"]
        assert cell.simulate(w, spes=6, double_buffering=True).frame_ns == g["6_double"]

    def test_gpu_configurations(self, case, golden):
        w = _workload(case)
        gpu = presets.gtx280()
        g = golden[case]["gpu_frame_ns"]
        assert gpu.estimate_frame(w, block_size=32).frame_ns == g["b32"]
        assert gpu.estimate_frame(w, block_size=256).frame_ns == g["b256"]
        assert gpu.estimate_frame(w, block_size=256,
                                  overlap_transfers=True).frame_ns == g["b256_ovl"]

    def test_fpga(self, case, golden):
        w = _workload(case)
        rep = presets.fpga_midrange().estimate_frame(w)
        assert rep.frame_ns == golden[case]["fpga_frame_ns"]
