"""Calibration tests: ground-truth recovery from synthetic targets."""

import numpy as np
import pytest

from repro.core.calibration import (
    calibrate,
    detect_blobs,
    fit_focal,
    select_model,
)
from repro.core.lens import make_lens
from repro.errors import CalibrationError


def observations(lens, n=24, max_theta_frac=0.9, noise=0.0, seed=0):
    """Synthetic (theta, radius) pairs from a known lens."""
    rng = np.random.default_rng(seed)
    thetas = np.linspace(0.05, lens.max_theta * max_theta_frac, n)
    thetas = np.minimum(thetas, np.pi / 2 * 0.98)
    radii = np.asarray(lens.angle_to_radius(thetas))
    if noise:
        radii = radii + rng.normal(0, noise, size=radii.shape)
    return thetas, radii


class TestFitFocal:
    @pytest.mark.parametrize("name", ["equidistant", "equisolid", "orthographic",
                                      "stereographic"])
    def test_exact_recovery(self, name):
        lens = make_lens(name, 137.0)
        thetas, radii = observations(lens)
        assert fit_focal(thetas, radii, name) == pytest.approx(137.0, rel=1e-12)

    def test_noisy_recovery_within_tolerance(self):
        lens = make_lens("equidistant", 200.0)
        thetas, radii = observations(lens, n=100, noise=0.5)
        assert fit_focal(thetas, radii) == pytest.approx(200.0, rel=0.01)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            fit_focal([], [], "equidistant")
        with pytest.raises(CalibrationError):
            fit_focal([0.5], [-1.0], "equidistant")
        with pytest.raises(CalibrationError):
            fit_focal([0.5, 0.6], [1.0], "equidistant")

    def test_angle_domain_checked(self):
        with pytest.raises(CalibrationError):
            fit_focal([2.0], [100.0], "orthographic")  # beyond pi/2


class TestSelectModel:
    @pytest.mark.parametrize("truth", ["equidistant", "equisolid", "stereographic"])
    def test_picks_true_family(self, truth):
        lens = make_lens(truth, 150.0)
        thetas, radii = observations(lens, n=40)
        fits = select_model(thetas, radii)
        assert fits[0].model == truth
        assert fits[0].rms_residual < fits[1].rms_residual

    def test_residual_ordering(self):
        lens = make_lens("equidistant", 80.0)
        thetas, radii = observations(lens)
        fits = select_model(thetas, radii)
        residuals = [f.rms_residual for f in fits]
        assert residuals == sorted(residuals)

    def test_empty_candidates_raise(self):
        with pytest.raises(CalibrationError):
            select_model([2.5], [10.0], candidates=["orthographic"])

    def test_fit_lens_constructible(self):
        lens = make_lens("equisolid", 60.0)
        thetas, radii = observations(lens)
        best = select_model(thetas, radii)[0]
        assert best.lens().focal == pytest.approx(60.0, rel=1e-9)


class TestDetectBlobs:
    def test_finds_isolated_dots(self):
        img = np.zeros((40, 40))
        img[10:13, 10:13] = 200.0
        img[30:34, 25:29] = 180.0
        blobs = detect_blobs(img, threshold=50.0)
        assert len(blobs) == 2
        # largest first
        assert blobs[0].area >= blobs[1].area

    def test_centroid_accuracy(self):
        img = np.zeros((21, 21))
        img[9:12, 9:12] = 100.0  # 3x3 block centred at (10, 10)
        blob = detect_blobs(img, threshold=10.0)[0]
        assert blob.x == pytest.approx(10.0)
        assert blob.y == pytest.approx(10.0)

    def test_min_area_filters_noise(self):
        img = np.zeros((20, 20))
        img[5, 5] = 255.0  # single-pixel speck
        img[10:14, 10:14] = 255.0
        blobs = detect_blobs(img, threshold=1.0, min_area=3)
        assert len(blobs) == 1

    def test_rejects_color_images(self):
        with pytest.raises(CalibrationError):
            detect_blobs(np.zeros((4, 4, 3)))

    def test_default_threshold_on_real_target(self):
        from repro.video.synth import circle_grid
        img, points = circle_grid(128, 128, rings=2, spokes=6)
        blobs = detect_blobs(img.astype(float))
        assert len(blobs) == len(points)


class TestCalibrate:
    def _target(self, name="equidistant", focal=90.0, center=(63.5, 63.5), n=30,
                seed=4):
        lens = make_lens(name, focal)
        rng = np.random.default_rng(seed)
        thetas = rng.uniform(0.1, min(lens.max_theta, np.pi / 2) * 0.85, size=n)
        phis = rng.uniform(0, 2 * np.pi, size=n)
        radii = np.asarray(lens.angle_to_radius(thetas))
        pts = np.stack([center[0] + radii * np.cos(phis),
                        center[1] + radii * np.sin(phis)], axis=1)
        return pts, thetas

    def test_recovers_model_focal_and_center(self):
        pts, thetas = self._target()
        result = calibrate(pts, thetas, center_guess=(60.0, 66.0))
        assert result.model == "equidistant"
        assert result.focal == pytest.approx(90.0, rel=1e-3)
        assert result.cx == pytest.approx(63.5, abs=0.05)
        assert result.cy == pytest.approx(63.5, abs=0.05)
        assert result.rms_residual < 1e-3

    def test_without_center_refinement(self):
        pts, thetas = self._target()
        result = calibrate(pts, thetas, center_guess=(63.5, 63.5),
                           refine_center=False)
        assert result.focal == pytest.approx(90.0, rel=1e-6)

    def test_result_lens_usable(self):
        pts, thetas = self._target(name="equisolid", focal=120.0)
        result = calibrate(pts, thetas, center_guess=(63.5, 63.5))
        assert result.model == "equisolid"
        lens = result.lens()
        assert float(lens.angle_to_radius(0.5)) == pytest.approx(
            float(make_lens("equisolid", 120.0).angle_to_radius(0.5)), rel=1e-3)

    def test_too_few_markers_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate(np.zeros((2, 2)), np.array([0.1, 0.2]), (0, 0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate(np.zeros((5, 3)), np.ones(5), (0, 0))
