"""Remap-field construction and analysis tests."""

import numpy as np
import pytest

from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
from repro.core.lens import EquidistantLens, PerspectiveLens
from repro.core.mapping import (
    RemapField,
    cylindrical_map,
    equirectangular_map,
    fisheye_forward_map,
    identity_map,
    perspective_map,
)
from repro.errors import MappingError


class TestRemapFieldBasics:
    def test_shape_and_coverage_of_identity(self):
        f = identity_map(8, 6)
        assert f.shape == (6, 8)
        assert f.coverage() == 1.0

    def test_mismatched_maps_rejected(self):
        with pytest.raises(MappingError):
            RemapField(np.zeros((4, 4)), np.zeros((4, 5)), 4, 4)

    def test_bad_source_size_rejected(self):
        with pytest.raises(MappingError):
            RemapField(np.zeros((4, 4)), np.zeros((4, 4)), 0, 4)

    def test_valid_mask_handles_nan(self):
        mx = np.array([[1.0, np.nan], [2.0, 3.0]])
        my = np.array([[1.0, 1.0], [np.nan, 3.0]])
        f = RemapField(mx, my, 8, 8)
        np.testing.assert_array_equal(f.valid_mask(),
                                      [[True, False], [False, True]])

    def test_valid_mask_is_cached(self):
        f = identity_map(4, 4)
        assert f.valid_mask() is f.valid_mask()

    def test_astype32_contiguous(self):
        f = identity_map(5, 5)
        mx, my = f.astype32()
        assert mx.dtype == np.float32 and mx.flags.c_contiguous


class TestPerspectiveMap:
    def test_center_pixel_maps_to_center(self, small_sensor, small_lens, small_out):
        # the output principal point is at (31.5, 31.5); pixel (32, 32)
        # sits half a pixel off, which at zoom 0.5 is one source pixel.
        f = perspective_map(small_sensor, small_lens, small_out)
        h, w = f.shape
        assert f.map_x[h // 2, w // 2] == pytest.approx(small_sensor.cx + 1.0, abs=0.05)
        assert f.map_y[h // 2, w // 2] == pytest.approx(small_sensor.cy + 1.0, abs=0.05)

    def test_radially_symmetric(self, small_field):
        # left/right mirror symmetry about the principal column
        mx = small_field.map_x
        h, w = mx.shape
        cx = (w - 1) / 2.0
        left = mx[h // 2, 10]
        right = mx[h // 2, w - 11]
        assert left - cx == pytest.approx(-(right - cx), abs=1e-6)

    def test_identity_when_both_perspective(self):
        # a perspective 'lens' corrected to the same perspective view is a no-op
        size = 32
        focal = 40.0
        sensor = FisheyeIntrinsics.centered(size, size, focal=focal)
        lens = PerspectiveLens(focal)
        out = CameraIntrinsics(fx=focal, fy=focal, cx=(size - 1) / 2.0,
                               cy=(size - 1) / 2.0, width=size, height=size)
        f = perspective_map(sensor, lens, out)
        xs, ys = np.meshgrid(np.arange(size, dtype=float), np.arange(size, dtype=float))
        np.testing.assert_allclose(f.map_x, xs.T if False else xs, atol=1e-8)
        np.testing.assert_allclose(f.map_y, ys, atol=1e-8)

    def test_zoom_out_increases_fov(self, small_sensor, small_lens):
        size = small_sensor.width

        def max_radius(zoom):
            focal = small_sensor.focal * zoom
            out = CameraIntrinsics(fx=focal, fy=focal, cx=(size - 1) / 2.0,
                                   cy=(size - 1) / 2.0, width=size, height=size)
            f = perspective_map(small_sensor, small_lens, out)
            r = np.hypot(f.map_x - small_sensor.cx, f.map_y - small_sensor.cy)
            return np.nanmax(r)

        assert max_radius(0.5) > max_radius(1.0)

    def test_tilt_creates_invalid_region(self, tilted_field):
        assert 0.0 < tilted_field.coverage() < 1.0

    def test_map_monotone_along_center_row(self, small_field):
        h = small_field.shape[0]
        row = small_field.map_x[h // 2]
        row = row[np.isfinite(row)]
        assert np.all(np.diff(row) > 0)


class TestPanoramicMaps:
    def test_cylindrical_shape_and_coverage(self, small_sensor, small_lens):
        f = cylindrical_map(small_sensor, small_lens, 48, 24)
        assert f.shape == (24, 48)
        assert f.coverage() > 0.5

    def test_cylindrical_rejects_bad_fov(self, small_sensor, small_lens):
        with pytest.raises(MappingError):
            cylindrical_map(small_sensor, small_lens, 48, 24, hfov=7.0)

    def test_equirectangular_center(self, small_sensor, small_lens):
        f = equirectangular_map(small_sensor, small_lens, 33, 33)
        assert f.map_x[16, 16] == pytest.approx(small_sensor.cx, abs=0.5)

    def test_equirect_rejects_empty(self, small_sensor, small_lens):
        with pytest.raises(MappingError):
            equirectangular_map(small_sensor, small_lens, 0, 10)


class TestForwardMap:
    def test_center_roundtrip(self, small_sensor, small_lens):
        scene = CameraIntrinsics.from_fov(64, 64, np.deg2rad(120.0))
        f = fisheye_forward_map(scene, small_lens, small_sensor)
        # fisheye centre samples scene centre
        cy, cx = small_sensor.height // 2, small_sensor.width // 2
        assert f.map_x[cy, cx] == pytest.approx(scene.cx, abs=0.5)

    def test_extreme_angles_masked(self, small_sensor, small_lens):
        scene = CameraIntrinsics.from_fov(64, 64, np.deg2rad(120.0))
        f = fisheye_forward_map(scene, small_lens, small_sensor)
        # the rim of the fisheye (theta ~ 90 deg) cannot see the scene plane
        assert not f.valid_mask()[small_sensor.height // 2, 0]


class TestMapAnalyses:
    def test_source_bbox_contains_samples(self, small_field):
        bbox = small_field.source_bbox(10, 20, 5, 30, margin=0)
        sy0, sy1, sx0, sx1 = bbox
        sub_x = small_field.map_x[10:20, 5:30]
        sub_y = small_field.map_y[10:20, 5:30]
        assert sx0 <= np.nanmin(sub_x) and np.nanmax(sub_x) <= sx1
        assert sy0 <= np.nanmin(sub_y) and np.nanmax(sub_y) <= sy1

    def test_source_bbox_clamped_to_frame(self, small_field):
        bbox = small_field.source_bbox(0, 5, 0, 64, margin=10)
        sy0, sy1, sx0, sx1 = bbox
        assert 0 <= sy0 < sy1 <= small_field.src_height
        assert 0 <= sx0 < sx1 <= small_field.src_width

    def test_source_bbox_none_for_invalid_tile(self, tilted_field):
        # find a tile that is fully out of FOV and check it needs no DMA
        mask = tilted_field.valid_mask()
        assert not mask[0, 0], "fixture expectation: tilted corner is invalid"
        bbox = tilted_field.source_bbox(0, 2, 0, 4)
        assert bbox is None

    def test_source_bbox_ignores_out_of_bounds_samples(self, tilted_field):
        # bbox derives from fetched (valid) samples only, so it is always
        # inside the source frame even when the map points outside it
        for r in range(0, 64, 16):
            bbox = tilted_field.source_bbox(r, r + 16, 0, 64)
            if bbox is None:
                continue
            sy0, sy1, sx0, sx1 = bbox
            assert 0 <= sy0 < sy1 <= 64 and 0 <= sx0 < sx1 <= 64

    def test_row_span_nonnegative_and_zero_for_identity(self):
        f = identity_map(16, 8)
        np.testing.assert_array_equal(f.row_span(), 0.0)

    def test_row_span_positive_for_fisheye(self, small_field):
        spans = small_field.row_span()
        assert spans.max() > 0.5

    def test_gather_lines_identity_is_coalesced(self):
        f = identity_map(64, 8)
        counts = f.gather_lines(group=32, line_bytes=32, pixel_bytes=1)
        # 32 consecutive 1-byte reads touch exactly one 32-byte line
        assert counts.max() <= 2.0

    def test_gather_lines_validates(self, small_field):
        with pytest.raises(MappingError):
            small_field.gather_lines(group=0)

    def test_coverage_between_zero_and_one(self, tilted_field):
        assert 0.0 <= tilted_field.coverage() <= 1.0
