"""Error hierarchy and public API surface tests."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_value_error_compatibility(self):
        # geometry/validation errors are also ValueError for ergonomic catching
        assert issubclass(errors.GeometryError, ValueError)
        assert issubclass(errors.MappingError, ValueError)
        assert issubclass(errors.PlatformError, ValueError)

    def test_capacity_is_platform_error(self):
        assert issubclass(errors.CapacityError, errors.PlatformError)

    def test_single_except_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.CalibrationError("x")


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_classes_exported(self):
        for name in ("FisheyeCorrector", "RemapLUT", "EquidistantLens",
                     "FisheyeIntrinsics", "perspective_map", "psnr"):
            assert name in repro.__all__

    def test_docstring_quickstart_runs(self):
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_subpackages_importable(self):
        import repro.accel
        import repro.bench
        import repro.parallel
        import repro.sim
        import repro.video

        assert repro.accel.kernel_spec is not None
        assert repro.bench.run_experiment is not None
