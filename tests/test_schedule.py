"""Loop-schedule replay tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.schedule import (
    SCHEDULES,
    cyclic_chunks,
    simulate,
    static_chunks,
)
from repro.errors import ScheduleError


class TestChunkHelpers:
    def test_static_contiguous_and_complete(self):
        chunks = static_chunks(10, 3)
        flat = [u for c in chunks for u in c]
        assert flat == list(range(10))
        assert all(c == sorted(c) for c in chunks)

    def test_static_sizes_balanced(self):
        sizes = [len(c) for c in static_chunks(11, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_cyclic_round_robin(self):
        chunks = cyclic_chunks(6, 2, chunk=1)
        assert chunks[0] == [0, 2, 4]
        assert chunks[1] == [1, 3, 5]

    def test_cyclic_chunked(self):
        chunks = cyclic_chunks(8, 2, chunk=2)
        assert chunks[0] == [0, 1, 4, 5]
        assert chunks[1] == [2, 3, 6, 7]

    def test_validation(self):
        with pytest.raises(ScheduleError):
            static_chunks(5, 0)
        with pytest.raises(ScheduleError):
            cyclic_chunks(5, 2, chunk=0)


class TestSimulate:
    def test_single_worker_makespan_is_sum(self):
        costs = np.array([3.0, 1.0, 2.0])
        for schedule in SCHEDULES:
            a = simulate(costs, 1, schedule=schedule)
            assert a.makespan == pytest.approx(6.0)

    def test_every_unit_scheduled_once(self):
        costs = np.arange(1, 21, dtype=float)
        for schedule in SCHEDULES:
            a = simulate(costs, 4, schedule=schedule)
            flat = sorted(u for w in a.order for u in w)
            assert flat == list(range(20))

    def test_makespan_lower_bounds(self):
        rng = np.random.default_rng(5)
        costs = rng.uniform(0.5, 2.0, size=30)
        for schedule in SCHEDULES:
            a = simulate(costs, 4, schedule=schedule)
            assert a.makespan >= costs.max() - 1e-12
            assert a.makespan >= costs.sum() / 4 - 1e-12

    def test_dynamic_beats_static_on_skewed_costs(self):
        # one contiguous run of expensive units (out-of-FOV pattern)
        costs = np.ones(32)
        costs[:8] = 10.0
        static = simulate(costs, 4, schedule="static")
        dynamic = simulate(costs, 4, schedule="dynamic")
        assert dynamic.makespan < static.makespan

    def test_guided_uses_fewer_dispatches_than_dynamic(self):
        costs = np.ones(256)
        dynamic = simulate(costs, 4, schedule="dynamic", chunk=1)
        guided = simulate(costs, 4, schedule="guided", chunk=1)
        assert guided.dispatches < dynamic.dispatches

    def test_dispatch_overhead_slows_fine_chunks(self):
        costs = np.ones(64)
        cheap = simulate(costs, 4, schedule="dynamic", chunk=16,
                         dispatch_overhead=0.5)
        pricey = simulate(costs, 4, schedule="dynamic", chunk=1,
                          dispatch_overhead=0.5)
        assert cheap.makespan < pricey.makespan

    def test_imbalance_metric(self):
        a = simulate(np.array([4.0, 1.0]), 2, schedule="static")
        assert a.imbalance == pytest.approx(4.0 / 2.5)

    def test_speedup(self):
        costs = np.ones(16)
        a = simulate(costs, 4, schedule="dynamic")
        assert a.speedup() == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ScheduleError):
            simulate(np.ones(4), 0)
        with pytest.raises(ScheduleError):
            simulate(np.array([]), 2)
        with pytest.raises(ScheduleError):
            simulate(np.array([-1.0]), 2)
        with pytest.raises(ScheduleError):
            simulate(np.ones(4), 2, schedule="fifo")
        with pytest.raises(ScheduleError):
            simulate(np.ones(4), 2, chunk=0)


@given(n=st.integers(1, 60), workers=st.integers(1, 8),
       schedule=st.sampled_from(SCHEDULES), seed=st.integers(0, 999))
@settings(max_examples=120, deadline=None)
def test_property_conservation_and_bounds(n, workers, schedule, seed):
    """Work is conserved and the makespan respects classic bounds."""
    rng = np.random.default_rng(seed)
    costs = rng.uniform(0.0, 3.0, size=n)
    a = simulate(costs, workers, schedule=schedule)
    flat = sorted(u for w in a.order for u in w)
    assert flat == list(range(n))
    assert a.busy.sum() == pytest.approx(costs.sum())
    assert a.makespan >= max(costs.max(), costs.sum() / workers) - 1e-9
    # list scheduling is within 2x of optimal (Graham's bound)
    assert a.makespan <= costs.sum() / workers + costs.max() + 1e-9 or \
        schedule in ("static", "static_cyclic")
