"""Forward rendering and synthetic stream tests (the key integration
property: render through the lens, correct, recover the scene)."""

import numpy as np
import pytest

from repro.core.intrinsics import CameraIntrinsics
from repro.core.pipeline import FisheyeCorrector
from repro.core.quality import psnr
from repro.video.distort import FisheyeRenderer, render_fisheye, scene_camera_for_sensor
from repro.video.stream import SyntheticStream, panning_crops
from repro.video.synth import checkerboard, gradient, urban
from repro.errors import GeometryError, ImageFormatError


@pytest.fixture()
def scene_cam(small_sensor, small_lens):
    return scene_camera_for_sensor(small_sensor, small_lens, 64, 64,
                                   scene_hfov=np.deg2rad(120.0))


class TestRenderer:
    def test_render_shape(self, scene_cam, small_sensor, small_lens):
        r = FisheyeRenderer(scene_cam, small_lens, small_sensor)
        out = r.render(gradient(64, 64))
        assert out.shape == (64, 64)

    def test_center_preserved(self, scene_cam, small_sensor, small_lens):
        # the axis pixel sees the scene centre in both geometries
        scene = gradient(64, 64)
        out = render_fisheye(scene, scene_cam, small_lens, small_sensor)
        assert abs(int(out[32, 32]) - int(scene[32, 32])) <= 3

    def test_rejects_wrong_scene_size(self, scene_cam, small_sensor, small_lens):
        r = FisheyeRenderer(scene_cam, small_lens, small_sensor)
        with pytest.raises(GeometryError):
            r.render(np.zeros((32, 32), dtype=np.uint8))

    def test_coverage_reported(self, scene_cam, small_sensor, small_lens):
        r = FisheyeRenderer(scene_cam, small_lens, small_sensor)
        assert 0.0 < r.coverage() <= 1.0

    def test_scene_camera_validation(self, small_sensor, small_lens):
        with pytest.raises(GeometryError):
            scene_camera_for_sensor(small_sensor, small_lens, 64, 64,
                                    scene_hfov=np.pi)

    def test_distortion_bends_straight_edges(self, scene_cam, small_sensor,
                                             small_lens):
        """An off-centre vertical edge is not a vertical line after the warp."""
        scene = np.zeros((64, 64), dtype=np.uint8)
        scene[:, 48:] = 255
        warped = render_fisheye(scene, scene_cam, small_lens, small_sensor)
        # find the edge column in several rows
        cols = []
        for row in (16, 32, 48):
            cross = np.nonzero(warped[row] > 127)[0]
            if cross.size:
                cols.append(cross[0])
        assert len(cols) == 3
        assert max(cols) - min(cols) >= 2  # bowed, not straight


class TestRoundTrip:
    def test_render_then_correct_recovers_scene_center(self, scene_cam,
                                                       small_sensor, small_lens):
        """The headline integration property of the whole library."""
        scene = urban(64, 64, seed=5)
        fisheye = render_fisheye(scene, scene_cam, small_lens, small_sensor)
        corrector = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64,
                                                zoom=1.0, method="bilinear")
        corrected = corrector.correct(fisheye)
        # compare the central crop against the matching scene window
        # zoom=1.0 output focal == lens focal; the scene camera focal differs,
        # so compare against the scene resampled at the output's geometry.
        from repro.core.interpolation import sample
        from repro.core.quality import perspective_reference_coords

        focal_out = float(small_lens.magnification(1e-4))
        out_cam = CameraIntrinsics(fx=focal_out, fy=focal_out, cx=31.5, cy=31.5,
                                   width=64, height=64)
        exp_x, exp_y = perspective_reference_coords(out_cam, scene_cam)
        reference = sample(scene, exp_x, exp_y, method="bilinear")
        centre = np.s_[24:40, 24:40]
        quality = psnr(reference[centre].astype(float),
                       corrected[centre].astype(float), peak=255.0)
        assert quality > 25.0


class TestPanningCrops:
    def test_count_and_shape(self):
        world = gradient(64, 48)
        crops = list(panning_crops(world, 32, 24, frames=5, step=4))
        assert len(crops) == 5
        assert all(c.shape == (24, 32) for c in crops)

    def test_pan_moves(self):
        world = gradient(64, 48)
        crops = list(panning_crops(world, 32, 24, frames=3, step=8))
        assert not np.array_equal(crops[0], crops[1])

    def test_pan_reflects_at_borders(self):
        world = checkerboard(40, 40, square=5)
        crops = list(panning_crops(world, 32, 32, frames=20, step=3))
        assert len(crops) == 20  # never runs off the world

    def test_full_size_crop_static(self):
        world = gradient(32, 32)
        crops = list(panning_crops(world, 32, 32, frames=3, step=4))
        for c in crops:
            np.testing.assert_array_equal(c, world)

    def test_validation(self):
        with pytest.raises(ImageFormatError):
            list(panning_crops(gradient(16, 16), 32, 8, frames=2))
        with pytest.raises(ImageFormatError):
            list(panning_crops(np.zeros((4, 4, 3), np.uint8), 2, 2, frames=1))
        with pytest.raises(ImageFormatError):
            list(panning_crops(gradient(16, 16), 8, 8, frames=0))


class TestSyntheticStream:
    def _stream(self, small_sensor, small_lens, frames=4):
        scene_cam = scene_camera_for_sensor(small_sensor, small_lens, 48, 48)
        renderer = FisheyeRenderer(scene_cam, small_lens, small_sensor)
        world = urban(96, 96, seed=8)
        return SyntheticStream(renderer, world, frames=frames, fps=25.0, step=6)

    def test_yields_frames_with_timestamps(self, small_sensor, small_lens):
        stream = self._stream(small_sensor, small_lens)
        frames = list(stream)
        assert len(frames) == len(stream) == 4
        assert [f.index for f in frames] == [0, 1, 2, 3]
        assert frames[2].timestamp == pytest.approx(2 / 25.0)

    def test_frames_are_fisheye_sized(self, small_sensor, small_lens):
        frame = next(iter(self._stream(small_sensor, small_lens)))
        assert frame.data.shape == (64, 64)
        assert frame.data.dtype == np.uint8

    def test_content_changes_between_frames(self, small_sensor, small_lens):
        frames = list(self._stream(small_sensor, small_lens, frames=3))
        assert not np.array_equal(frames[0].data, frames[2].data)

    def test_deterministic(self, small_sensor, small_lens):
        a = [f.data for f in self._stream(small_sensor, small_lens, frames=2)]
        b = [f.data for f in self._stream(small_sensor, small_lens, frames=2)]
        np.testing.assert_array_equal(a[1], b[1])

    def test_validation(self, small_sensor, small_lens):
        scene_cam = scene_camera_for_sensor(small_sensor, small_lens, 48, 48)
        renderer = FisheyeRenderer(scene_cam, small_lens, small_sensor)
        with pytest.raises(ImageFormatError):
            SyntheticStream(renderer, urban(96, 96), frames=0)
        with pytest.raises(ImageFormatError):
            SyntheticStream(renderer, urban(96, 96), fps=0.0)

    def test_end_to_end_with_corrector(self, small_sensor, small_lens):
        from repro.core.pipeline import StreamStats

        stream = self._stream(small_sensor, small_lens, frames=3)
        corrector = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64,
                                                zoom=0.6)
        stats = StreamStats()
        outs = [f.data.copy() for f in corrector.correct_stream(stream, stats=stats)]
        assert len(outs) == 3
        assert stats.frames == 3
