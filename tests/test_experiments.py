"""Experiment registry smoke/shape tests.

These do not re-run the expensive default configurations; each
experiment is invoked at its smallest meaningful scale and the *shape*
claims recorded in EXPERIMENTS.md are asserted (who wins, what is
monotone), not absolute numbers.
"""

import numpy as np
import pytest

from repro.bench import experiments as exp
from repro.bench.report import Table
from repro.errors import BenchmarkError


class TestRegistry:
    def test_all_ids_present(self):
        assert set(exp.EXPERIMENTS) == {
            "T1", "T2", "F1", "F2", "F3", "F4", "F5", "F6",
            "F7", "F8", "F9", "F10", "F11", "F12", "A1", "A2", "A3", "A4", "A5", "H1", "H2",
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(BenchmarkError):
            exp.run_experiment("F99")

    def test_case_insensitive(self):
        t = exp.run_experiment("t1")
        assert isinstance(t, Table)


class TestT1:
    def test_rows_and_columns(self):
        t = exp.t1_platforms()
        assert "platform" in t.headers
        assert len(t.rows) == 6
        assert "cell" in t.column("platform")


class TestT2:
    def test_stage_profile_sums(self):
        t = exp.t2_sequential_profile(res="VGA")
        stages = t.column("stage")
        assert {"map_build", "lut_build", "gather", "interpolate",
                "store", "per_frame_total"} <= set(stages)
        ms = dict(zip(stages, t.column("ms")))
        assert ms["per_frame_total"] == pytest.approx(
            ms["gather"] + ms["interpolate"] + ms["store"], rel=0.05)


class TestF1:
    def test_speedup_monotone_per_resolution(self):
        t = exp.f1_multicore_scaling(resolutions=("VGA",))
        speedups = t.column("speedup")
        threads = t.column("threads")
        assert threads == sorted(threads)
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
        assert speedups[0] == pytest.approx(1.0)


class TestF2:
    def test_double_buffering_wins_compute_bound(self):
        t = exp.f2_cell_scaling(res="VGA", method="bicubic", mode="otf")
        rows = list(zip(t.column("spes"), t.column("buffering"), t.column("fps")))
        single = {s: f for s, b, f in rows if b == "single"}
        double = {s: f for s, b, f in rows if b == "double"}
        assert double[max(double)] >= single[max(single)] * 0.95


class TestF6:
    def test_blocked_beats_row_major_at_small_cache(self):
        t = exp.f6_tile_size_cache(res="VGA", cache_kb=(8, 64), band_rows=48,
                                   block=24)
        rows = list(zip(t.column("cache_kb"), t.column("traversal"),
                        t.column("hit_rate")))
        at8 = {trav: hr for kb, trav, hr in rows if kb == 8}
        assert at8["blocked"] >= at8["row-major"] - 1e-9

    def test_hit_rate_monotone_in_cache_size(self):
        t = exp.f6_tile_size_cache(res="VGA", cache_kb=(4, 16, 64), band_rows=32,
                                   block=16)
        rows = list(zip(t.column("cache_kb"), t.column("traversal"),
                        t.column("hit_rate")))
        for trav in ("row-major", "blocked"):
            series = [hr for kb, hr in
                      sorted((kb, hr) for kb, tv, hr in rows if tv == trav)]
            assert all(a <= b + 0.02 for a, b in zip(series, series[1:]))


class TestF9:
    def test_lut_memory_bound_on_cached_platforms(self):
        t = exp.f9_roofline()
        for platform, kernel, bound in zip(t.column("platform"),
                                           t.column("kernel"), t.column("bound")):
            if kernel == "bilinear/lut" and platform != "fpga":
                assert bound == "memory"

    def test_attainable_below_peak(self):
        t = exp.f9_roofline()
        for att, peak in zip(t.column("attainable"), t.column("peak")):
            assert att <= peak + 1e-9


class TestF10:
    def test_exact_model_subpixel_polynomials_worse(self):
        t = exp.f10_model_quality(size=128)
        rows = dict(zip(t.column("model"), t.column("median_err_px")))
        assert rows["exact(equidistant)"] < 0.1
        for name, err in rows.items():
            if name.startswith("brown"):
                assert err > rows["exact(equidistant)"]


class TestF12:
    def test_quality_monotone_in_bits(self):
        t = exp.f12_fixed_point(res="VGA", frac_bits=(2, 6, 10))
        psnrs = t.column("psnr_vs_float_db")
        assert psnrs[0] < psnrs[1] < psnrs[2]

    def test_entry_bytes_grow_with_bits(self):
        t = exp.f12_fixed_point(res="VGA", frac_bits=(2, 10))
        sizes = t.column("packed_entry_bytes")
        assert sizes[0] < sizes[1]
