"""Brown–Conrady baseline model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brown_conrady import BrownConrady, BrownConradyLens, fit_brown_conrady
from repro.core.lens import EquidistantLens, EquisolidLens
from repro.errors import CalibrationError, LensModelError


class TestForwardModel:
    def test_zero_coefficients_is_identity(self):
        bc = BrownConrady()
        xd, yd = bc.distort(np.array([0.3]), np.array([-0.2]))
        assert xd[0] == pytest.approx(0.3)
        assert yd[0] == pytest.approx(-0.2)

    def test_radial_term_scales_with_r2(self):
        bc = BrownConrady(k1=0.1)
        rd = bc.distort_radius(np.array([1.0]))
        assert rd[0] == pytest.approx(1.1)

    def test_tangential_terms(self):
        bc = BrownConrady(p1=0.01, p2=0.02)
        xd, yd = bc.distort(np.array([0.5]), np.array([0.5]))
        r2 = 0.5
        assert xd[0] == pytest.approx(0.5 + 2 * 0.01 * 0.25 + 0.02 * (r2 + 2 * 0.25))
        assert yd[0] == pytest.approx(0.5 + 0.01 * (r2 + 2 * 0.25) + 2 * 0.02 * 0.25)

    def test_origin_fixed_point(self):
        bc = BrownConrady(k1=0.3, k2=-0.1, p1=0.05, p2=-0.04)
        xd, yd = bc.distort(0.0, 0.0)
        assert float(xd) == 0.0 and float(yd) == 0.0


class TestInverse:
    def test_newton_inverts_mild_distortion(self):
        bc = BrownConrady(k1=0.05, k2=0.01)
        ru = np.linspace(0.01, 1.5, 40)
        rd = bc.distort_radius(ru)
        back = bc.undistort_radius(rd)
        np.testing.assert_allclose(back, ru, rtol=1e-8)

    def test_identity_coefficients_inverse(self):
        bc = BrownConrady()
        rd = np.linspace(0.0, 2.0, 10)
        np.testing.assert_allclose(bc.undistort_radius(rd), rd, atol=1e-12)

    def test_nonmonotonic_range_returns_nan(self):
        # strong negative k1 folds the mapping; far radii are not invertible
        bc = BrownConrady(k1=-0.5)
        out = bc.undistort_radius(np.array([10.0]))
        assert np.isnan(out).all()


class TestFit:
    @pytest.mark.parametrize("lens_cls", [EquidistantLens, EquisolidLens])
    def test_fit_accurate_in_range(self, lens_cls):
        lens = lens_cls(150.0)
        bc = fit_brown_conrady(lens, max_theta=np.deg2rad(60.0), order=3)
        theta = np.linspace(0.05, np.deg2rad(55.0), 30)
        exact = np.asarray(lens.angle_to_radius(theta))
        approx = np.asarray(bc.angle_to_radius(theta))
        # within the fit range the polynomial tracks within ~1% of radius
        assert np.max(np.abs(approx - exact) / exact) < 0.02

    def test_fit_degrades_beyond_range(self):
        lens = EquidistantLens(150.0)
        bc = fit_brown_conrady(lens, max_theta=np.deg2rad(60.0), order=3)
        theta_far = np.deg2rad(85.0)
        exact = float(lens.angle_to_radius(theta_far))
        approx = float(bc.angle_to_radius(theta_far))
        assert abs(approx - exact) > 10.0  # pixels — the classical failure

    def test_fit_preserves_focal(self):
        lens = EquidistantLens(99.0)
        bc = fit_brown_conrady(lens)
        assert bc.focal == 99.0

    def test_higher_order_fits_better(self):
        lens = EquidistantLens(150.0)
        theta = np.linspace(0.05, np.deg2rad(70.0), 64)
        exact = np.asarray(lens.angle_to_radius(theta))
        errs = []
        for order in (1, 2, 3):
            bc = fit_brown_conrady(lens, max_theta=np.deg2rad(70.0), order=order)
            approx = np.asarray(bc.angle_to_radius(theta))
            errs.append(float(np.sqrt(np.mean((approx - exact) ** 2))))
        assert errs[0] > errs[1] > errs[2]

    def test_fit_validation(self):
        lens = EquidistantLens(100.0)
        with pytest.raises(CalibrationError):
            fit_brown_conrady(lens, max_theta=2.0)
        with pytest.raises(CalibrationError):
            fit_brown_conrady(lens, order=5)
        with pytest.raises(CalibrationError):
            fit_brown_conrady(lens, samples=2, order=3)


class TestLensAdapter:
    def test_domain_capped_below_90deg(self):
        lens = fit_brown_conrady(EquidistantLens(100.0))
        assert lens.max_theta < np.pi / 2
        assert np.isnan(lens.angle_to_radius(np.pi / 2))

    def test_roundtrip_in_interior(self):
        lens = fit_brown_conrady(EquidistantLens(100.0), max_theta=np.deg2rad(60.0))
        theta = np.linspace(0.05, np.deg2rad(50.0), 16)
        r = np.asarray(lens.angle_to_radius(theta))
        back = np.asarray(lens.radius_to_angle(r))
        np.testing.assert_allclose(back, theta, rtol=1e-6)

    def test_rejects_bad_max_theta(self):
        with pytest.raises(LensModelError):
            BrownConradyLens(100.0, BrownConrady(), max_theta=2.0)


@given(k1=st.floats(-0.05, 0.08), k2=st.floats(-0.01, 0.01),
       ru=st.floats(0.01, 1.2))
@settings(max_examples=60, deadline=None)
def test_property_inverse_of_forward(k1, k2, ru):
    """undistort(distort(r)) == r wherever the forward map is monotone."""
    bc = BrownConrady(k1=k1, k2=k2)
    # verify local monotonicity before asserting inversion
    eps = 1e-5
    if bc.distort_radius(np.array([ru + eps])) <= bc.distort_radius(np.array([ru])):
        return
    rd = bc.distort_radius(np.array([ru]))
    back = bc.undistort_radius(rd)
    if np.isnan(back).any():
        return  # Newton declined: acceptable for near-fold configurations
    assert back[0] == pytest.approx(ru, rel=1e-6, abs=1e-9)
