"""High-level FisheyeCorrector pipeline tests."""

import numpy as np
import pytest

from repro.core.image import GRAY8, Frame
from repro.core.pipeline import FisheyeCorrector, SequentialExecutor, StreamStats
from repro.core.remap import RemapLUT
from repro.errors import MappingError


class TestConstruction:
    def test_for_sensor_builds_full_coverage_view(self, small_sensor, small_lens):
        c = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64, zoom=0.5)
        assert c.out_shape == (64, 64)
        assert c.coverage() == pytest.approx(1.0)

    def test_zoom_validation(self, small_sensor, small_lens):
        with pytest.raises(MappingError):
            FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64, zoom=0.0)

    def test_zoom_one_preserves_center_resolution(self, small_sensor, small_lens):
        from repro.core.quality import center_scale

        c = FisheyeCorrector.for_sensor(small_sensor, small_lens, 64, 64, zoom=1.0)
        assert center_scale(c.field) == pytest.approx(1.0, abs=0.02)

    def test_lut_lazy_and_cached(self, small_field):
        c = FisheyeCorrector(small_field)
        assert c._lut is None
        lut = c.lut
        assert isinstance(lut, RemapLUT)
        assert c.lut is lut


class TestCorrect:
    def test_array_in_array_out(self, small_field, random_image):
        c = FisheyeCorrector(small_field)
        out = c.correct(random_image)
        assert isinstance(out, np.ndarray)
        assert out.shape == (64, 64)

    def test_frame_in_frame_out(self, small_field, random_image):
        c = FisheyeCorrector(small_field)
        frame = Frame(random_image, GRAY8, index=3, timestamp=0.1)
        out = c.correct(frame)
        assert isinstance(out, Frame)
        assert out.index == 3

    def test_matches_direct_lut(self, small_field, random_image):
        c = FisheyeCorrector(small_field, method="bicubic")
        direct = RemapLUT(small_field, method="bicubic").apply(random_image)
        np.testing.assert_array_equal(c.correct(random_image), direct)

    def test_executor_injection(self, small_field, random_image):
        calls = []

        class SpyExecutor:
            def run(self, lut, image, out=None):
                calls.append(image.shape)
                return SequentialExecutor().run(lut, image, out)

        c = FisheyeCorrector(small_field, executor=SpyExecutor())
        c.correct(random_image)
        assert calls == [(64, 64)]

    def test_tilted_view_fill(self, tilted_field, random_image):
        c = FisheyeCorrector(tilted_field, fill=17.0)
        out = c.correct(random_image)
        invalid = ~tilted_field.valid_mask()
        np.testing.assert_array_equal(out[invalid], 17)


class TestStream:
    def test_stream_yields_all_frames(self, small_field, rng):
        c = FisheyeCorrector(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8) for _ in range(5)]
        outs = [o.copy() for o in c.correct_stream(frames)]
        assert len(outs) == 5
        np.testing.assert_array_equal(outs[2], c.correct(frames[2]))

    def test_stream_stats_accumulate(self, small_field, rng):
        c = FisheyeCorrector(small_field)
        stats = StreamStats()
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8) for _ in range(4)]
        for _ in c.correct_stream(frames, stats=stats):
            pass
        assert stats.frames == 4
        assert stats.pixels == 4 * 64 * 64
        assert stats.seconds > 0
        assert stats.fps > 0
        assert stats.mpixels_per_s > 0

    def test_stream_frame_objects(self, small_field, random_image):
        c = FisheyeCorrector(small_field)
        frames = [Frame(random_image, GRAY8, index=i) for i in range(3)]
        outs = list(c.correct_stream(frames))
        assert [f.index for f in outs] == [0, 1, 2]
        assert all(isinstance(f, Frame) for f in outs)

    def test_stream_reuses_buffer(self, small_field, rng):
        c = FisheyeCorrector(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8) for _ in range(2)]
        it = c.correct_stream(frames)
        first = next(it)
        second = next(it)
        # zero-copy contract: same backing buffer
        assert first is second

    def test_empty_stats(self):
        stats = StreamStats()
        assert stats.fps == 0.0
        assert stats.mpixels_per_s == 0.0
