"""Quality metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.mapping import identity_map
from repro.core.quality import (
    center_scale,
    fov_retention,
    line_straightness,
    psnr,
    ssim,
)
from repro.errors import GeometryError, ImageFormatError


class TestPSNR:
    def test_identical_is_infinite(self, random_image):
        assert psnr(random_image, random_image) == float("inf")

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 10.0)
        # mse = 100, peak = 255 -> 10 log10(65025/100)
        assert psnr(a, b, peak=255.0) == pytest.approx(10 * np.log10(65025 / 100))

    def test_mask_restricts(self, random_image):
        noisy = random_image.copy()
        noisy[:32] = 0  # destroy the top half
        mask = np.zeros_like(random_image, dtype=bool)
        mask[32:] = True
        assert psnr(random_image, noisy, mask=mask) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ImageFormatError):
            psnr(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_monotone_in_noise(self, random_image, rng):
        img = random_image.astype(np.float64)
        small = psnr(img, img + rng.normal(0, 1, img.shape))
        large = psnr(img, img + rng.normal(0, 8, img.shape))
        assert small > large

    def test_auto_peak_for_unit_range(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 0.1)
        assert psnr(a, b) == pytest.approx(10 * np.log10(1.0 / 0.01))


class TestSSIM:
    def test_identical_is_one(self, random_image):
        assert ssim(random_image, random_image) == pytest.approx(1.0)

    def test_noise_reduces_similarity(self, gradient_image, rng):
        noisy = np.clip(gradient_image + rng.normal(0, 30, gradient_image.shape),
                        0, 255)
        assert ssim(gradient_image, noisy) < 0.95

    def test_color_averaged(self, rgb_image):
        assert ssim(rgb_image, rgb_image) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ImageFormatError):
            ssim(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_constant_shift_scores_below_one(self):
        a = np.full((32, 32), 100.0)
        b = np.full((32, 32), 140.0)
        assert ssim(a, b, peak=255.0) < 1.0


class TestLineStraightness:
    def test_perfect_line(self):
        t = np.linspace(0, 1, 20)
        pts = np.stack([3 * t + 1, -2 * t + 5], axis=1)
        rms, mx = line_straightness(pts)
        assert rms == pytest.approx(0.0, abs=1e-12)
        assert mx == pytest.approx(0.0, abs=1e-12)

    def test_vertical_line_supported(self):
        pts = np.stack([np.full(10, 2.0), np.arange(10.0)], axis=1)
        rms, _ = line_straightness(pts)
        assert rms == pytest.approx(0.0, abs=1e-12)

    def test_bowed_points_measured(self):
        t = np.linspace(-1, 1, 21)
        pts = np.stack([t, 0.5 * t ** 2], axis=1)
        rms, mx = line_straightness(pts)
        assert rms > 0.05
        assert mx >= rms

    def test_validation(self):
        with pytest.raises(GeometryError):
            line_straightness(np.zeros((2, 2)))
        with pytest.raises(GeometryError):
            line_straightness(np.zeros((5, 3)))


class TestFieldMetrics:
    def test_center_scale_identity_is_one(self):
        assert center_scale(identity_map(16, 16)) == pytest.approx(1.0)

    def test_center_scale_scaled_map(self):
        f = identity_map(16, 16)
        f2 = type(f)(f.map_x * 2.0, f.map_y * 2.0, 32, 32)
        assert center_scale(f2) == pytest.approx(2.0)

    def test_center_scale_small_field_rejected(self):
        with pytest.raises(GeometryError):
            center_scale(identity_map(2, 2))

    def test_fov_retention_full_for_wide_view(self, small_field, small_lens,
                                              small_sensor):
        # the zoom-0.5 view reaches deep into the periphery
        ret = fov_retention(small_field, small_lens, small_sensor)
        assert 0.7 < ret <= 1.0

    def test_fov_retention_small_for_zoomed_view(self, small_sensor, small_lens):
        from repro.core.intrinsics import CameraIntrinsics
        from repro.core.mapping import perspective_map

        focal = small_sensor.focal * 4.0  # heavy zoom-in
        out = CameraIntrinsics(fx=focal, fy=focal, cx=31.5, cy=31.5,
                               width=64, height=64)
        f = perspective_map(small_sensor, small_lens, out)
        narrow = fov_retention(f, small_lens, small_sensor)
        wide = fov_retention(
            perspective_map(small_sensor, small_lens,
                            CameraIntrinsics(fx=focal / 8, fy=focal / 8, cx=31.5,
                                             cy=31.5, width=64, height=64)),
            small_lens, small_sensor)
        assert narrow < wide

    def test_fov_retention_empty_field_zero(self, small_lens, small_sensor):
        from repro.core.mapping import RemapField

        f = RemapField(np.full((4, 4), np.nan), np.full((4, 4), np.nan), 64, 64)
        assert fov_retention(f, small_lens, small_sensor) == 0.0


@given(scale=st.floats(0.25, 4.0))
@settings(max_examples=40, deadline=None)
def test_property_center_scale_tracks_uniform_scaling(scale):
    f = identity_map(16, 16)
    scaled = type(f)(f.map_x * scale, f.map_y * scale, 64, 64)
    assert center_scale(scaled) == pytest.approx(scale, rel=1e-9)
