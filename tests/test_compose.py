"""Coordinate-field composition tests."""

import threading

import numpy as np
import pytest

from repro.core.compose import (affine_field, compose_fields, composed_lut,
                                crop_field, downscale_field)
from repro.core.lutcache import LUTCache
from repro.core.mapping import identity_map
from repro.core.remap import RemapLUT
from repro.errors import MappingError


class TestCropField:
    def test_identity_crop(self):
        f = crop_field(8, 8, 0.0, 0.0, 8, 8, scale=1.0)
        g = identity_map(8, 8)
        np.testing.assert_allclose(f.map_x, g.map_x)
        np.testing.assert_allclose(f.map_y, g.map_y)

    def test_offset_and_scale(self):
        f = crop_field(4, 4, 10.0, 20.0, 64, 64, scale=2.0)
        assert f.map_x[0, 0] == 10.0 and f.map_y[0, 0] == 20.0
        assert f.map_x[0, 3] == 16.0 and f.map_y[3, 0] == 26.0

    def test_validation(self):
        with pytest.raises(MappingError):
            crop_field(0, 4, 0, 0, 8, 8)
        with pytest.raises(MappingError):
            crop_field(4, 4, 0, 0, 8, 8, scale=0.0)


class TestAffineField:
    def test_identity_matrix(self):
        f = affine_field(6, 6, [[1, 0, 0], [0, 1, 0]], 6, 6)
        g = identity_map(6, 6)
        np.testing.assert_allclose(f.map_x, g.map_x)

    def test_rotation_90(self):
        # backward map of a 90-degree rotation about the origin
        f = affine_field(4, 4, [[0, 1, 0], [-1, 0, 3]], 4, 4)
        assert f.map_x[2, 1] == 2.0   # src_x = y
        assert f.map_y[2, 1] == 2.0   # src_y = 3 - x

    def test_validation(self):
        with pytest.raises(MappingError):
            affine_field(4, 4, np.eye(3), 4, 4)


class TestComposeFields:
    def test_identity_neutral_both_sides(self, small_field):
        ident_out = identity_map(64, 64)
        left = compose_fields(ident_out, small_field)
        np.testing.assert_allclose(left.map_x, small_field.map_x, atol=1e-9)
        ident_src = identity_map(64, 64)
        right = compose_fields(small_field, ident_src)
        mask = small_field.valid_mask()
        np.testing.assert_allclose(right.map_x[mask], small_field.map_x[mask],
                                   atol=1e-9)

    def test_crop_after_correction_matches_cropped_map(self, small_field):
        crop = crop_field(16, 16, 24.0, 24.0, 64, 64)
        composed = compose_fields(crop, small_field)
        np.testing.assert_allclose(composed.map_x,
                                   small_field.map_x[24:40, 24:40], atol=1e-9)

    def test_single_resample_sharper_than_double(self, small_field, rng):
        """The module's reason to exist: compose-then-remap beats
        remap-then-remap."""
        from scipy import ndimage

        img = ndimage.gaussian_filter(
            rng.integers(0, 255, (64, 64)).astype(np.float64), 1.5)
        zoom = crop_field(64, 64, 16.0, 16.0, 64, 64, scale=0.5)

        twice = RemapLUT(zoom).apply(RemapLUT(small_field).apply(img))
        once = RemapLUT(compose_fields(zoom, small_field)).apply(img)

        # reference: the exact composed coordinates sampled once more
        # finely (bicubic)
        exact_field = compose_fields(zoom, small_field)
        reference = RemapLUT(exact_field, method="bicubic").apply(img)
        err_twice = np.nanmean((twice - reference) ** 2)
        err_once = np.nanmean((once - reference) ** 2)
        assert err_once <= err_twice + 1e-9

    def test_out_of_range_propagates_nan(self, tilted_field):
        crop = crop_field(32, 32, 0.0, 0.0, 64, 64)
        composed = compose_fields(crop, tilted_field)
        # the tilted field's invalid top region stays invalid
        assert not composed.valid_mask().all()

    def test_shape_mismatch_rejected(self, small_field):
        wrong = crop_field(8, 8, 0.0, 0.0, 32, 32)  # samples a 32x32 frame
        with pytest.raises(MappingError):
            compose_fields(wrong, small_field)

    def test_composed_correction_applies(self, small_field, random_image):
        stabilize = affine_field(64, 64, [[1, 0, 0.5], [0, 1, -0.25]], 64, 64)
        field = compose_fields(stabilize, small_field)
        out = RemapLUT(field).apply(random_image)
        assert out.shape == (64, 64)


class TestNonFiniteParams:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_crop_nonfinite_origin(self, bad):
        with pytest.raises(MappingError):
            crop_field(4, 4, bad, 0.0, 8, 8)
        with pytest.raises(MappingError):
            crop_field(4, 4, 0.0, bad, 8, 8)

    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_crop_nonfinite_scale(self, bad):
        with pytest.raises(MappingError):
            crop_field(4, 4, 0.0, 0.0, 8, 8, scale=bad)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_affine_nonfinite_matrix(self, bad):
        with pytest.raises(MappingError):
            affine_field(4, 4, [[1.0, 0.0, bad], [0.0, 1.0, 0.0]], 4, 4)


class TestDownscaleField:
    def test_area_convention_centres(self):
        # output pixel j covers source span [j*s, (j+1)*s) and samples
        # its centre: at 2:1 pixel 0 samples 0.5, pixel 1 samples 2.5
        f = downscale_field(4, 4, 8, 8)
        assert f.map_x[0, 0] == 0.5 and f.map_x[0, 1] == 2.5
        assert f.map_y[1, 0] == 2.5

    def test_two_to_one_is_box_average(self):
        rng = np.random.default_rng(0)
        img = rng.uniform(0, 255, (8, 8))
        out = RemapLUT(downscale_field(4, 4, 8, 8, prefilter=False)).apply(img)
        box = img.reshape(4, 2, 4, 2).mean(axis=(1, 3))
        np.testing.assert_allclose(out, box, atol=1e-9)

    def test_prefilter_hint(self):
        assert downscale_field(4, 4, 8, 8).prefilter_factor == 1
        assert downscale_field(4, 4, 16, 16).prefilter_factor == 2
        assert downscale_field(4, 4, 16, 16,
                               prefilter=False).prefilter_factor == 1

    def test_upscale_rejected(self):
        with pytest.raises(MappingError):
            downscale_field(16, 16, 8, 8)


class TestComposedLut:
    def test_matches_direct_composition(self, small_field, random_image):
        outer = downscale_field(32, 32, 64, 64, prefilter=False)
        lut = composed_lut(outer, small_field)
        direct = RemapLUT(compose_fields(outer, small_field))
        assert np.array_equal(lut.apply(random_image),
                              direct.apply(random_image))

    def test_cache_key_and_reuse(self, small_field):
        outer = downscale_field(32, 32, 64, 64, prefilter=False)
        cache = LUTCache()
        a = composed_lut(outer, small_field, cache=cache)
        b = composed_lut(outer, small_field, cache=cache)
        assert a is b
        assert cache.misses == 1 and cache.hits == 1
        # a different outer keys a different entry
        other = downscale_field(16, 16, 64, 64, prefilter=False)
        c = composed_lut(other, small_field, cache=cache)
        assert c is not a

    def test_composed_build_single_flight(self, small_field):
        from repro.obs.telemetry import Telemetry, scoped

        outer = downscale_field(32, 32, 64, 64, prefilter=False)
        cache = LUTCache()
        got = []
        barrier = threading.Barrier(4)
        tel = Telemetry()

        def build():
            # scoped() is context-local: enter it per thread
            with scoped(tel):
                barrier.wait()
                got.append(cache.get_composed(outer, small_field))

        threads = [threading.Thread(target=build) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 4
        assert all(g is got[0] for g in got)
        assert tel.snapshot()["counters"]["lutcache.builds"] == 1

    def test_antialias_factor_supersamples(self, small_field):
        from repro.core.antialias import SupersampledLUT

        outer = downscale_field(16, 16, 64, 64)  # 4:1 -> hint factor 2
        lut = composed_lut(outer, small_field)
        assert isinstance(lut, SupersampledLUT)
        # the same call with antialias=False pins the plain table
        plain = composed_lut(outer, small_field, antialias=False)
        assert isinstance(plain, RemapLUT)


class TestNanPropagationStages:
    def test_outer_out_of_range_goes_nan(self, small_field):
        # outer samples beyond inner's output: those pixels are invalid
        outer = crop_field(8, 8, 60.0, 60.0, 64, 64)
        composed = compose_fields(outer, small_field)
        mask = composed.valid_mask()
        assert not mask[-1, -1]
        assert mask[0, 0]

    def test_inner_invalid_survives_downscale(self, tilted_field):
        outer = downscale_field(32, 32, 64, 64, prefilter=False)
        composed = compose_fields(outer, tilted_field)
        frac_inner = 1.0 - tilted_field.valid_mask().mean()
        frac_comp = 1.0 - composed.valid_mask().mean()
        # the tilted field's out-of-FOV share survives composition
        # (bilinear sampling of nan borders only widens it slightly)
        assert frac_comp >= frac_inner * 0.8
        assert frac_comp <= frac_inner + 0.2

    def test_double_composition_associates(self, small_field):
        # crop ∘ (down ∘ correct) == (crop ∘ down) ∘ correct: both
        # orders collapse affine outers exactly
        down = downscale_field(32, 32, 64, 64, prefilter=False)
        crop = crop_field(16, 16, 8.0, 8.0, 32, 32)
        left = compose_fields(crop, compose_fields(down, small_field))
        right = compose_fields(compose_fields(crop, down), small_field)
        mask = left.valid_mask() & right.valid_mask()
        np.testing.assert_allclose(left.map_x[mask], right.map_x[mask],
                                   atol=1e-9)
        np.testing.assert_allclose(left.map_y[mask], right.map_y[mask],
                                   atol=1e-9)

    def test_fused_tracks_two_pass_reference(self, small_field):
        from scipy import ndimage

        rng = np.random.default_rng(2)
        img = ndimage.gaussian_filter(
            rng.uniform(0, 255, (64, 64)), 1.5)
        outer = downscale_field(32, 32, 64, 64, prefilter=False)
        fused = RemapLUT(compose_fields(outer, small_field)).apply(img)
        two_pass = RemapLUT(outer).apply(RemapLUT(small_field).apply(img))
        mse = np.mean((fused - two_pass) ** 2)
        psnr = 10.0 * np.log10(255.0 ** 2 / mse)
        assert psnr > 30.0
