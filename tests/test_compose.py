"""Coordinate-field composition tests."""

import numpy as np
import pytest

from repro.core.compose import affine_field, compose_fields, crop_field
from repro.core.mapping import identity_map
from repro.core.remap import RemapLUT
from repro.errors import MappingError


class TestCropField:
    def test_identity_crop(self):
        f = crop_field(8, 8, 0.0, 0.0, 8, 8, scale=1.0)
        g = identity_map(8, 8)
        np.testing.assert_allclose(f.map_x, g.map_x)
        np.testing.assert_allclose(f.map_y, g.map_y)

    def test_offset_and_scale(self):
        f = crop_field(4, 4, 10.0, 20.0, 64, 64, scale=2.0)
        assert f.map_x[0, 0] == 10.0 and f.map_y[0, 0] == 20.0
        assert f.map_x[0, 3] == 16.0 and f.map_y[3, 0] == 26.0

    def test_validation(self):
        with pytest.raises(MappingError):
            crop_field(0, 4, 0, 0, 8, 8)
        with pytest.raises(MappingError):
            crop_field(4, 4, 0, 0, 8, 8, scale=0.0)


class TestAffineField:
    def test_identity_matrix(self):
        f = affine_field(6, 6, [[1, 0, 0], [0, 1, 0]], 6, 6)
        g = identity_map(6, 6)
        np.testing.assert_allclose(f.map_x, g.map_x)

    def test_rotation_90(self):
        # backward map of a 90-degree rotation about the origin
        f = affine_field(4, 4, [[0, 1, 0], [-1, 0, 3]], 4, 4)
        assert f.map_x[2, 1] == 2.0   # src_x = y
        assert f.map_y[2, 1] == 2.0   # src_y = 3 - x

    def test_validation(self):
        with pytest.raises(MappingError):
            affine_field(4, 4, np.eye(3), 4, 4)


class TestComposeFields:
    def test_identity_neutral_both_sides(self, small_field):
        ident_out = identity_map(64, 64)
        left = compose_fields(ident_out, small_field)
        np.testing.assert_allclose(left.map_x, small_field.map_x, atol=1e-9)
        ident_src = identity_map(64, 64)
        right = compose_fields(small_field, ident_src)
        mask = small_field.valid_mask()
        np.testing.assert_allclose(right.map_x[mask], small_field.map_x[mask],
                                   atol=1e-9)

    def test_crop_after_correction_matches_cropped_map(self, small_field):
        crop = crop_field(16, 16, 24.0, 24.0, 64, 64)
        composed = compose_fields(crop, small_field)
        np.testing.assert_allclose(composed.map_x,
                                   small_field.map_x[24:40, 24:40], atol=1e-9)

    def test_single_resample_sharper_than_double(self, small_field, rng):
        """The module's reason to exist: compose-then-remap beats
        remap-then-remap."""
        from scipy import ndimage

        img = ndimage.gaussian_filter(
            rng.integers(0, 255, (64, 64)).astype(np.float64), 1.5)
        zoom = crop_field(64, 64, 16.0, 16.0, 64, 64, scale=0.5)

        twice = RemapLUT(zoom).apply(RemapLUT(small_field).apply(img))
        once = RemapLUT(compose_fields(zoom, small_field)).apply(img)

        # reference: the exact composed coordinates sampled once more
        # finely (bicubic)
        exact_field = compose_fields(zoom, small_field)
        reference = RemapLUT(exact_field, method="bicubic").apply(img)
        err_twice = np.nanmean((twice - reference) ** 2)
        err_once = np.nanmean((once - reference) ** 2)
        assert err_once <= err_twice + 1e-9

    def test_out_of_range_propagates_nan(self, tilted_field):
        crop = crop_field(32, 32, 0.0, 0.0, 64, 64)
        composed = compose_fields(crop, tilted_field)
        # the tilted field's invalid top region stays invalid
        assert not composed.valid_mask().all()

    def test_shape_mismatch_rejected(self, small_field):
        wrong = crop_field(8, 8, 0.0, 0.0, 32, 32)  # samples a 32x32 frame
        with pytest.raises(MappingError):
            compose_fields(wrong, small_field)

    def test_composed_correction_applies(self, small_field, random_image):
        stabilize = affine_field(64, 64, [[1, 0, 0.5], [0, 1, -0.25]], 64, 64)
        field = compose_fields(stabilize, small_field)
        out = RemapLUT(field).apply(random_image)
        assert out.shape == (64, 64)
