"""Interpolation kernel tests: vectorized vs scalar oracle, borders,
mathematical properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import interpolation as interp
from repro.errors import InterpolationError


class TestResolveIndices:
    def test_replicate_clamps(self):
        idx = np.array([-3, 0, 4, 7])
        out = interp.resolve_indices(idx, 5, "replicate")
        np.testing.assert_array_equal(out, [0, 0, 4, 4])

    def test_reflect(self):
        idx = np.array([-2, -1, 0, 4, 5, 6])
        out = interp.resolve_indices(idx, 5, "reflect")
        np.testing.assert_array_equal(out, [2, 1, 0, 4, 3, 2])

    def test_reflect_size_one(self):
        out = interp.resolve_indices(np.array([-5, 0, 9]), 1, "reflect")
        np.testing.assert_array_equal(out, [0, 0, 0])

    def test_wrap(self):
        idx = np.array([-1, 0, 5, 6])
        out = interp.resolve_indices(idx, 5, "wrap")
        np.testing.assert_array_equal(out, [4, 0, 0, 1])

    def test_unknown_mode(self):
        with pytest.raises(InterpolationError):
            interp.resolve_indices(np.array([0]), 5, "banana")


class TestFootprint:
    def test_values(self):
        assert interp.footprint("nearest") == 1
        assert interp.footprint("bilinear") == 4
        assert interp.footprint("bicubic") == 16

    def test_unknown(self):
        with pytest.raises(InterpolationError):
            interp.footprint("lanczos")


class TestExactnessOnIntegerCoords:
    """Sampling exactly on pixel centres must reproduce the pixel."""

    @pytest.mark.parametrize("method", interp.METHODS)
    def test_integer_grid_identity(self, method, random_image):
        h, w = random_image.shape
        xs, ys = np.meshgrid(np.arange(w, dtype=float), np.arange(h, dtype=float))
        out = interp.sample(random_image, xs, ys, method=method, border="replicate")
        np.testing.assert_array_equal(out, random_image)

    @pytest.mark.parametrize("method", interp.METHODS)
    def test_constant_image_everywhere(self, method):
        img = np.full((16, 16), 97, dtype=np.uint8)
        xs = np.linspace(1.2, 13.7, 20)
        ys = np.linspace(2.1, 12.9, 20)
        out = interp.sample(img, xs, ys, method=method)
        np.testing.assert_array_equal(out, 97)


class TestBilinearMath:
    def test_midpoint_average(self):
        img = np.array([[0.0, 10.0]], dtype=np.float64)
        val = interp.sample(img, np.array([0.5]), np.array([0.0]), method="bilinear",
                            border="replicate")
        assert float(val[0]) == pytest.approx(5.0)

    def test_linear_ramp_reproduced_exactly(self):
        # bilinear reconstructs any affine function exactly
        ys, xs = np.indices((10, 10), dtype=np.float64)
        img = 3.0 * xs + 2.0 * ys + 1.0
        qx = np.array([1.25, 4.75, 7.5])
        qy = np.array([2.5, 3.25, 8.0])
        out = interp.sample(img, qx, qy, method="bilinear", border="replicate")
        np.testing.assert_allclose(out, 3.0 * qx + 2.0 * qy + 1.0, rtol=1e-12)


class TestBicubicMath:
    def test_weights_sum_to_one(self):
        fr = np.linspace(0, 0.999, 33)
        w = interp.catmull_rom_weights(fr)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0, atol=1e-12)

    def test_weights_at_zero_select_center(self):
        w = interp.catmull_rom_weights(np.array(0.0))
        np.testing.assert_allclose(w, [0.0, 1.0, 0.0, 0.0], atol=1e-15)

    def test_linear_ramp_reproduced(self):
        # Catmull-Rom also reconstructs affine functions exactly
        ys, xs = np.indices((12, 12), dtype=np.float64)
        img = 2.0 * xs - 1.0 * ys + 5.0
        qx = np.array([3.3, 6.7])
        qy = np.array([4.4, 5.5])
        out = interp.sample(img, qx, qy, method="bicubic", border="replicate")
        np.testing.assert_allclose(out, 2.0 * qx - 1.0 * qy + 5.0, rtol=1e-10)


class TestBorderConstant:
    @pytest.mark.parametrize("method", interp.METHODS)
    def test_outside_returns_fill(self, method, random_image):
        out = interp.sample(random_image, np.array([-10.0, 100.0]),
                            np.array([5.0, 5.0]), method=method, fill=42.0)
        np.testing.assert_array_equal(out, [42, 42])

    @pytest.mark.parametrize("method", interp.METHODS)
    def test_nan_coordinates_return_fill(self, method, random_image):
        out = interp.sample(random_image, np.array([np.nan]), np.array([3.0]),
                            method=method, fill=7.0)
        assert out[0] == 7

    def test_fill_dtype_clipped(self, random_image):
        out = interp.sample(random_image, np.array([-1.0]), np.array([0.0]),
                            method="nearest", fill=300.0)
        assert out[0] == 255  # clipped to uint8


class TestMultiChannel:
    @pytest.mark.parametrize("method", interp.METHODS)
    def test_channels_independent(self, method, rgb_image):
        xs = np.linspace(2, 60, 9)
        ys = np.linspace(3, 59, 9)
        full = interp.sample(rgb_image, xs, ys, method=method, border="replicate")
        for c in range(3):
            single = interp.sample(rgb_image[..., c], xs, ys, method=method,
                                   border="replicate")
            np.testing.assert_array_equal(full[..., c], single)


class TestScalarOracle:
    """The vectorized kernels must agree with the loop reference."""

    @pytest.mark.parametrize("method", interp.METHODS)
    @pytest.mark.parametrize("border", interp.BORDER_MODES)
    def test_agreement_random_coords(self, method, border, random_image, rng):
        xs = rng.uniform(-5, 68, size=40)
        ys = rng.uniform(-5, 68, size=40)
        fast = interp.sample(random_image, xs, ys, method=method, border=border,
                             fill=9.0)
        slow = interp.sample_scalar(random_image, xs, ys, method=method,
                                    border=border, fill=9.0)
        # uint8 rounding can differ by 1 ULP at exact .5 boundaries
        np.testing.assert_allclose(fast.astype(int), slow.astype(int), atol=1)

    def test_agreement_float_image(self, rng):
        img = rng.normal(size=(16, 16))
        xs = rng.uniform(0, 15, size=25)
        ys = rng.uniform(0, 15, size=25)
        fast = interp.sample(img, xs, ys, method="bicubic", border="reflect")
        slow = interp.sample_scalar(img, xs, ys, method="bicubic", border="reflect")
        np.testing.assert_allclose(fast, slow, rtol=1e-10, atol=1e-12)


class TestValidation:
    def test_shape_mismatch(self, random_image):
        with pytest.raises(InterpolationError):
            interp.sample(random_image, np.zeros(3), np.zeros(4))

    def test_bad_method(self, random_image):
        with pytest.raises(InterpolationError):
            interp.sample(random_image, np.zeros(1), np.zeros(1), method="area")

    def test_bad_border(self, random_image):
        with pytest.raises(InterpolationError):
            interp.sample(random_image, np.zeros(1), np.zeros(1), border="edge")

    def test_bad_image_ndim(self):
        with pytest.raises(InterpolationError):
            interp.sample(np.zeros((2, 2, 2, 2)), np.zeros(1), np.zeros(1))


@given(x=st.floats(0, 14.999), y=st.floats(0, 14.999))
@settings(max_examples=60, deadline=None)
def test_property_bilinear_within_local_extrema(x, y):
    """Bilinear output is bounded by its 4 neighbours (no overshoot)."""
    rng = np.random.default_rng(99)
    img = rng.uniform(0, 1, size=(16, 16))
    val = float(interp.sample(img, np.array([x]), np.array([y]),
                              method="bilinear", border="replicate")[0])
    x0, y0 = int(np.floor(x)), int(np.floor(y))
    patch = img[y0:y0 + 2, x0:x0 + 2]
    assert patch.min() - 1e-9 <= val <= patch.max() + 1e-9


@given(sx=st.floats(0.2, 14.8), sy=st.floats(0.2, 14.8))
@settings(max_examples=60, deadline=None)
def test_property_interpolation_is_translation_equivariant(sx, sy):
    """Sampling a shifted constant-gradient image matches the shift."""
    ys, xs = np.indices((16, 16), dtype=np.float64)
    img = xs + 10.0 * ys
    v = float(interp.sample(img, np.array([sx]), np.array([sy]),
                            method="bilinear", border="replicate")[0])
    assert v == pytest.approx(sx + 10.0 * sy, rel=1e-10)
