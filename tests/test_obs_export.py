"""Exporters: Prometheus text, Chrome trace_event, writers, pretty-print.

The Prometheus and Chrome renderings are pinned against golden files in
``tests/golden/`` — the exporter output is an interface (scrapers and
Perfetto consume it), so formatting changes must be deliberate.
"""

import json
import os

import pytest

from repro.obs.export import (
    chrome_trace,
    format_snapshot,
    metrics_json,
    prometheus_text,
    write_metrics,
    write_trace,
)
from repro.obs.telemetry import Telemetry

pytestmark = pytest.mark.tier1

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")


def reference_registry() -> Telemetry:
    """A fully deterministic registry exercising every exporter feature."""
    tel = Telemetry(pid=1234)
    tel.counter("remap.frames").inc(3)
    tel.counter("lutcache.mem.hits").inc(2)
    tel.gauge("stream.fps").set(24.5)
    h = tel.histogram("remap.apply_seconds", buckets=(0.01, 0.05, 0.1))
    for v in (0.004, 0.02, 0.02, 0.07, 0.5):
        h.observe(v)
    # measured spans on two integer (thread-like) tracks, nested
    tel.add_span("stream.frame", 100.0, 0.040, cat="stream", tid=1, depth=0)
    tel.add_span("remap.apply", 100.005, 0.030, cat="remap", tid=1, depth=1,
                 args={"pixels": 4096})
    tel.add_span("executor.band", 100.010, 0.012, cat="process", tid=2)
    # a modeled span on a synthetic string track
    tel.add_span("cell.tile0.dma_in", 100.0, 0.001, cat="model",
                 tid="model:cell-spe")
    return tel


def _read_golden(name: str) -> str:
    with open(os.path.join(GOLDEN, name)) as fh:
        return fh.read()


class TestPrometheus:
    def test_golden(self):
        assert prometheus_text(reference_registry()) == _read_golden(
            "obs_prometheus.txt")

    def test_histogram_is_cumulative_with_inf(self):
        text = prometheus_text(reference_registry())
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_remap_apply_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)          # cumulative
        assert 'le="+Inf"' in lines[-1]
        assert counts[-1] == 5                   # == _count
        assert "repro_remap_apply_seconds_count 5" in text

    def test_names_flattened_and_prefixed(self):
        text = prometheus_text(reference_registry())
        assert "repro_lutcache_mem_hits 2" in text
        names = [l.split(" ")[0].split("{")[0] for l in text.splitlines()
                 if l and not l.startswith("#")]
        assert all("." not in n and n.startswith("repro_") for n in names)

    def test_type_lines_present(self):
        text = prometheus_text(reference_registry())
        assert "# TYPE repro_remap_frames counter" in text
        assert "# TYPE repro_stream_fps gauge" in text
        assert "# TYPE repro_remap_apply_seconds histogram" in text


class TestChromeTrace:
    def test_golden(self):
        assert chrome_trace(reference_registry()) == json.loads(
            _read_golden("obs_trace.json"))

    def test_events_are_perfetto_valid(self):
        events = chrome_trace(reference_registry())
        assert isinstance(events, list) and events
        xs = [e for e in events if e["ph"] == "X"]
        assert xs, "no duration events"
        for e in xs:
            assert isinstance(e["tid"], int)
            assert e["ts"] >= 0.0            # rebased to the earliest span
            assert e["dur"] >= 0.0
            assert e["name"] and e["cat"]
        assert any(e["ts"] == 0.0 for e in xs)

    def test_string_tracks_get_thread_names(self):
        events = chrome_trace(reference_registry())
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "thread_name"
        assert meta[0]["args"]["name"] == "model:cell-spe"
        assert meta[0]["tid"] >= 1000

    def test_empty_snapshot(self):
        assert chrome_trace(Telemetry(pid=1)) == []


class TestWritersAndFormat:
    def test_write_metrics_roundtrip(self, tmp_path):
        path = str(tmp_path / "m.json")
        snap = write_metrics(reference_registry(), path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded == snap
        assert loaded["counters"]["remap.frames"] == 3
        assert metrics_json(loaded) is loaded   # dicts pass through

    def test_write_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trace.json")
        events = write_trace(reference_registry(), path)
        with open(path) as fh:
            assert json.load(fh) == events

    def test_format_snapshot_sections(self):
        text = format_snapshot(reference_registry())
        assert "counters:" in text
        assert "remap.frames" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "spans:" in text
        assert "stream.frame" in text

    def test_format_empty(self):
        assert "empty" in format_snapshot({})
