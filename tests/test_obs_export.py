"""Exporters: Prometheus text, Chrome trace_event, writers, pretty-print.

The Prometheus and Chrome renderings are pinned against golden files in
``tests/golden/`` — the exporter output is an interface (scrapers and
Perfetto consume it), so formatting changes must be deliberate.
"""

import json
import os

import pytest

from repro.obs.export import (
    chrome_trace,
    diff_snapshots,
    escape_label_value,
    format_snapshot,
    labeled,
    metrics_json,
    parse_prometheus_text,
    prometheus_text,
    slo_summary,
    split_labeled,
    write_metrics,
    write_trace,
)
from repro.obs.telemetry import Telemetry

pytestmark = pytest.mark.tier1

GOLDEN = os.path.join(os.path.dirname(__file__), "golden")


def reference_registry() -> Telemetry:
    """A fully deterministic registry exercising every exporter feature."""
    tel = Telemetry(pid=1234)
    tel.counter("remap.frames").inc(3)
    tel.counter("lutcache.mem.hits").inc(2)
    tel.gauge("stream.fps").set(24.5)
    h = tel.histogram("remap.apply_seconds", buckets=(0.01, 0.05, 0.1))
    for v in (0.004, 0.02, 0.02, 0.07, 0.5):
        h.observe(v)
    # measured spans on two integer (thread-like) tracks, nested
    tel.add_span("stream.frame", 100.0, 0.040, cat="stream", tid=1, depth=0)
    tel.add_span("remap.apply", 100.005, 0.030, cat="remap", tid=1, depth=1,
                 args={"pixels": 4096})
    tel.add_span("executor.band", 100.010, 0.012, cat="process", tid=2)
    # a modeled span on a synthetic string track
    tel.add_span("cell.tile0.dma_in", 100.0, 0.001, cat="model",
                 tid="model:cell-spe")
    return tel


def _read_golden(name: str) -> str:
    with open(os.path.join(GOLDEN, name)) as fh:
        return fh.read()


class TestPrometheus:
    def test_golden(self):
        assert prometheus_text(reference_registry()) == _read_golden(
            "obs_prometheus.txt")

    def test_histogram_is_cumulative_with_inf(self):
        text = prometheus_text(reference_registry())
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_remap_apply_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)          # cumulative
        assert 'le="+Inf"' in lines[-1]
        assert counts[-1] == 5                   # == _count
        assert "repro_remap_apply_seconds_count 5" in text

    def test_names_flattened_and_prefixed(self):
        text = prometheus_text(reference_registry())
        assert "repro_lutcache_mem_hits 2" in text
        names = [l.split(" ")[0].split("{")[0] for l in text.splitlines()
                 if l and not l.startswith("#")]
        assert all("." not in n and n.startswith("repro_") for n in names)

    def test_type_lines_present(self):
        text = prometheus_text(reference_registry())
        assert "# TYPE repro_remap_frames counter" in text
        assert "# TYPE repro_stream_fps gauge" in text
        assert "# TYPE repro_remap_apply_seconds histogram" in text


class TestChromeTrace:
    def test_golden(self):
        assert chrome_trace(reference_registry()) == json.loads(
            _read_golden("obs_trace.json"))

    def test_events_are_perfetto_valid(self):
        events = chrome_trace(reference_registry())
        assert isinstance(events, list) and events
        xs = [e for e in events if e["ph"] == "X"]
        assert xs, "no duration events"
        for e in xs:
            assert isinstance(e["tid"], int)
            assert e["ts"] >= 0.0            # rebased to the earliest span
            assert e["dur"] >= 0.0
            assert e["name"] and e["cat"]
        assert any(e["ts"] == 0.0 for e in xs)

    def test_string_tracks_get_thread_names(self):
        events = chrome_trace(reference_registry())
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1
        assert meta[0]["name"] == "thread_name"
        assert meta[0]["args"]["name"] == "model:cell-spe"
        assert meta[0]["tid"] >= 1000

    def test_empty_snapshot(self):
        assert chrome_trace(Telemetry(pid=1)) == []


class TestWritersAndFormat:
    def test_write_metrics_roundtrip(self, tmp_path):
        path = str(tmp_path / "m.json")
        snap = write_metrics(reference_registry(), path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert loaded == snap
        assert loaded["counters"]["remap.frames"] == 3
        assert metrics_json(loaded) is loaded   # dicts pass through

    def test_write_trace_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trace.json")
        events = write_trace(reference_registry(), path)
        with open(path) as fh:
            assert json.load(fh) == events

    def test_format_snapshot_sections(self):
        text = format_snapshot(reference_registry())
        assert "counters:" in text
        assert "remap.frames" in text
        assert "gauges:" in text
        assert "histograms:" in text
        assert "spans:" in text
        assert "stream.frame" in text

    def test_format_empty(self):
        assert "empty" in format_snapshot({})


class TestPrometheusFormatRules:
    """Exposition-format edge cases: +Inf, escaping, unset gauges."""

    def edge_registry(self) -> Telemetry:
        tel = Telemetry(pid=1234)
        tel.counter("stream.frames").inc(2)
        tel.gauge("stream.fps").set(0.0)      # explicit zero: present
        tel.gauge("ring.in_flight")           # registered, never set: absent
        h = tel.histogram("frame.e2e_latency_seconds", buckets=(0.01, 0.1))
        h.observe(0.004)
        h.observe(5.0)                        # lands in the +Inf bucket
        return tel

    def test_golden_edge_cases(self):
        assert prometheus_text(self.edge_registry()) == _read_golden(
            "obs_prometheus_escape.txt")

    def test_unset_gauge_absent_set_zero_present(self):
        text = prometheus_text(self.edge_registry())
        assert "repro_ring_in_flight" not in text
        assert "repro_stream_fps 0" in text

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        assert escape_label_value(0.01) == "0.01"

    def test_output_parses_with_line_checker(self):
        series = parse_prometheus_text(prometheus_text(self.edge_registry()))
        assert series["repro_stream_frames"] == [({}, 2.0)]
        buckets = dict()
        for labels, value in series["repro_frame_e2e_latency_seconds_bucket"]:
            buckets[labels["le"]] = value
        assert buckets["+Inf"] == 2.0
        assert buckets["0.01"] == 1.0
        assert series["repro_frame_e2e_latency_seconds_count"] == [({}, 2.0)]

    def test_reference_registry_parses_too(self):
        series = parse_prometheus_text(prometheus_text(reference_registry()))
        assert "repro_remap_frames" in series

    def test_checker_rejects_malformed(self):
        from repro.errors import TelemetryError

        for bad in ("no_value_metric",
                    "bad-name 1",
                    "metric not_a_number",
                    "# TYPE repro_x flume"):
            with pytest.raises(TelemetryError):
                parse_prometheus_text(bad)

    def test_checker_unescapes_nothing_but_splits_labels(self):
        got = parse_prometheus_text('m{a="x",b="y"} 1\n')
        assert got == {"m": [({"a": "x", "b": "y"}, 1.0)]}


class TestDiffAndSlo:
    def snap(self, frames, misses, lat):
        tel = Telemetry(pid=1)
        tel.counter("stream.frames").inc(frames)
        if misses:
            tel.counter("stream.deadline_miss").inc(misses)
        tel.gauge("stream.fps").set(frames / max(sum(lat), 1e-9))
        h = tel.histogram("frame.e2e_latency_seconds", buckets=(0.01, 0.1, 1.0))
        for v in lat:
            h.observe(v)
        return tel.snapshot()

    def test_diff_counters_and_histograms(self):
        a = self.snap(4, 0, [0.005] * 4)
        b = self.snap(9, 2, [0.005] * 4 + [0.05] * 5)
        text = diff_snapshots(a, b)
        assert "counters (B - A):" in text
        assert "stream.frames" in text and "+5" in text
        assert "stream.deadline_miss" in text and "(new)" in text
        assert "histograms (A -> B):" in text
        assert "count 4 -> 9 (+5)" in text
        assert "p50" in text and "p95" in text

    def test_diff_gauges_show_unset(self):
        a = Telemetry(pid=1)
        a.gauge("g")
        b = Telemetry(pid=1)
        b.gauge("g").set(3.0)
        text = diff_snapshots(a.snapshot(), b.snapshot())
        assert "unset -> 3" in text

    def test_diff_identical_is_stable(self):
        s = self.snap(1, 0, [0.005])
        assert diff_snapshots(s, s).count("+0") >= 1

    def test_diff_empty(self):
        assert "identical or empty" in diff_snapshots({}, {})

    def test_slo_summary_reads_e2e_and_misses(self):
        slo = slo_summary(self.snap(10, 3, [0.005] * 8 + [0.5] * 2))
        assert slo["frames"] == 10
        assert slo["deadline_misses"] == 3
        assert slo["miss_rate"] == pytest.approx(0.3)
        assert 0 < slo["p50_s"] <= 0.01
        assert slo["p99_s"] > slo["p50_s"]
        assert slo["stalls"] == 0

    def test_slo_summary_none_without_latency(self):
        assert slo_summary(reference_registry()) is None
        assert slo_summary({}) is None

    def test_format_snapshot_shows_quantiles_and_slo(self):
        text = format_snapshot(self.snap(10, 3, [0.005] * 8 + [0.5] * 2))
        assert "p50" in text and "p95" in text and "p99" in text
        assert "slo:" in text
        assert "deadline miss 3/10 (30.0%)" in text
        # bucket bars are gone from the histogram section
        assert "|" not in text


class TestLabelledSeries:
    """The labelled-name convention (repro.serve per-stream metrics)."""

    def labelled_registry(self) -> Telemetry:
        tel = Telemetry(pid=1234)
        tel.counter("stream.frames").inc(6)
        tel.counter(labeled("stream.frames", stream="cam0")).inc(2)
        tel.counter(labeled("stream.frames", stream="cam1")).inc(4)
        tel.gauge(labeled("stream.fps", stream="cam0")).set(12.5)
        h = tel.histogram(labeled("frame.e2e_latency_seconds",
                                  stream="cam0"), buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        return tel

    def test_labeled_builds_sorted_escaped_names(self):
        assert labeled("stream.frames") == "stream.frames"
        assert (labeled("stream.frames", stream="cam0")
                == 'stream.frames{stream="cam0"}')
        assert (labeled("m", b="2", a="1") == 'm{a="1",b="2"}')
        assert (labeled("m", s='he said "hi"\n')
                == 'm{s="he said \\"hi\\"\\n"}')

    def test_labeled_rejects_bad_keys(self):
        from repro.errors import TelemetryError

        with pytest.raises(TelemetryError):
            labeled("m", **{"bad-key": "v"})
        with pytest.raises(TelemetryError):
            labeled("m", **{"0lead": "v"})

    def test_split_labeled_roundtrip(self):
        name = labeled("stream.frames", stream="cam0")
        base, labels = split_labeled(name)
        assert base == "stream.frames"
        assert labels == '{stream="cam0"}'
        assert split_labeled("plain.name") == ("plain.name", "")

    def test_one_type_line_per_base_metric(self):
        text = prometheus_text(self.labelled_registry())
        assert text.count("# TYPE repro_stream_frames counter") == 1
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_stream_frames")]
        assert 'repro_stream_frames 6' in lines
        assert 'repro_stream_frames{stream="cam0"} 2' in lines
        assert 'repro_stream_frames{stream="cam1"} 4' in lines

    def test_labelled_histogram_merges_le_into_labels(self):
        text = prometheus_text(self.labelled_registry())
        assert ('repro_frame_e2e_latency_seconds_bucket'
                '{stream="cam0",le="0.01"} 1') in text
        assert ('repro_frame_e2e_latency_seconds_bucket'
                '{stream="cam0",le="+Inf"} 2') in text
        assert ('repro_frame_e2e_latency_seconds_count{stream="cam0"} 2'
                in text)

    def test_labelled_output_stays_parseable(self):
        series = parse_prometheus_text(prometheus_text(self.labelled_registry()))
        assert ({"stream": "cam0"}, 2.0) in series["repro_stream_frames"]
        assert ({}, 6.0) in series["repro_stream_frames"]
        assert ({"stream": "cam0"}, 12.5) in series["repro_stream_fps"]
        assert ({"stream": "cam0", "le": "+Inf"},
                2.0) in series["repro_frame_e2e_latency_seconds_bucket"]

    def test_unlabelled_rendering_unchanged_by_feature(self):
        """No labelled names -> byte-identical classic rendering (the
        golden-file tests pin this; double-check the TYPE grouping)."""
        tel = Telemetry(pid=1)
        tel.counter("a.b").inc(1)
        text = prometheus_text(tel)
        assert "# TYPE repro_a_b counter\nrepro_a_b 1" in text
