"""Cell BE platform model tests."""

import numpy as np
import pytest

from repro.accel.cellbe import CellModel
from repro.accel.platform import Workload
from repro.errors import CapacityError, PlatformError


@pytest.fixture()
def cell():
    return CellModel(spes=4, ppe_serial_ns=1_000)


@pytest.fixture()
def workload(small_field):
    return Workload.from_field(small_field, mode="otf")


@pytest.fixture()
def workload_lut(small_field):
    return Workload.from_field(small_field, mode="lut")


class TestConstruction:
    def test_validation(self):
        with pytest.raises(PlatformError):
            CellModel(spes=0)
        with pytest.raises(PlatformError):
            CellModel(eib_bw_gbps=0.0)
        with pytest.raises(PlatformError):
            CellModel(code_bytes=300 * 1024)

    def test_peak_scales_with_spes(self):
        assert CellModel(spes=8).peak_gflops == 2 * CellModel(spes=4).peak_gflops


class TestTiling:
    def test_max_tile_rows_fits_budget(self, cell, workload):
        rows = cell.max_tile_rows(workload, double_buffering=False)
        jobs = cell._jobs(workload, rows)
        budget = cell.usable_local_store(False)
        assert max(j.working_set for j in jobs) <= budget

    def test_double_buffering_halves_budget(self, cell, workload):
        single = cell.max_tile_rows(workload, double_buffering=False)
        double = cell.max_tile_rows(workload, double_buffering=True)
        assert double <= single

    def test_tiny_local_store_infeasible(self, workload):
        # budget of 256 B (128 double-buffered) cannot hold one output row
        tiny = CellModel(local_store_bytes=48 * 1024 + 256, code_bytes=48 * 1024)
        with pytest.raises(CapacityError):
            tiny.max_tile_rows(workload)

    def test_max_tile_shape_column_split_fallback(self, workload):
        # a store too small for full-width bands but fine for half-width
        small = CellModel(local_store_bytes=56 * 1024, code_bytes=32 * 1024)
        rows, cols = small.max_tile_shape(workload, double_buffering=True)
        assert cols <= workload.out_width
        assert rows >= 1

    def test_simulate_rejects_oversized_explicit_tile(self, workload):
        # whole-frame tile (~9 KB working set) vs a 4 KB double-buffer budget
        small = CellModel(local_store_bytes=56 * 1024, code_bytes=48 * 1024)
        with pytest.raises(CapacityError):
            small.simulate(workload, tile_rows=workload.out_height,
                           tile_cols=workload.out_width, double_buffering=True)

    def test_jobs_cover_all_pixels(self, cell, workload):
        jobs = cell._jobs(workload, 10, 20)
        total = sum(j.tile.pixels for j in jobs)
        assert total == workload.pixels


class TestSimulation:
    def test_deterministic(self, cell, workload):
        a = cell.simulate(workload)
        b = cell.simulate(workload)
        assert a.frame_ns == b.frame_ns

    def test_more_spes_not_slower(self, cell, workload):
        times = [cell.simulate(workload, spes=s).frame_ns for s in (1, 2, 4)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_compute_bound_otf_scales(self, cell, workload):
        t1 = cell.simulate(workload, spes=1).frame_ns
        t4 = cell.simulate(workload, spes=4).frame_ns
        assert t1 / t4 > 2.0

    def test_double_buffering_helps_compute_bound(self, workload):
        # bicubic OTF: compute dominates, so overlap hides the DMA
        cell = CellModel(spes=4, ppe_serial_ns=0)
        wl = Workload.from_field(workload.field, method="bicubic", mode="otf")
        single = cell.simulate(wl, double_buffering=False, tile_rows=4)
        double = cell.simulate(wl, double_buffering=True, tile_rows=4)
        assert double.frame_ns <= single.frame_ns

    def test_lut_mode_is_dma_bound(self, cell, workload_lut):
        rep = cell.simulate(workload_lut)
        assert rep.bottleneck == "dma"

    def test_bus_utilization_reported(self, cell, workload):
        rep = cell.simulate(workload)
        assert 0.0 <= rep.notes["bus_utilization"] <= 1.0

    def test_serial_floor(self, workload):
        cell = CellModel(spes=2, ppe_serial_ns=5_000_000)
        assert cell.simulate(workload).frame_ns >= 5_000_000

    def test_spe_bounds_checked(self, cell, workload):
        with pytest.raises(PlatformError):
            cell.simulate(workload, spes=0)
        with pytest.raises(PlatformError):
            cell.simulate(workload, spes=10)

    def test_scaling_helper(self, cell, workload):
        reports = cell.scaling(workload, spe_counts=[1, 2])
        assert [r.notes["spes"] for r in reports] == [1, 2]

    def test_estimate_frame_default(self, cell, workload):
        rep = cell.estimate_frame(workload)
        assert rep.notes["double_buffering"] is True

    def test_dma_traffic_accounting(self, cell, workload):
        rep = cell.simulate(workload)
        # DMA volume must at least cover the output frame writeback
        assert rep.notes["dma_bytes"] >= workload.frame_out_bytes()

    def test_eib_contention_at_scale(self, small_field):
        """With DMA-heavy LUT workloads, doubling SPEs stops helping."""
        wl = Workload.from_field(small_field, mode="lut")
        cell = CellModel(spes=8, ppe_serial_ns=0)
        t4 = cell.simulate(wl, spes=4).frame_ns
        t8 = cell.simulate(wl, spes=8).frame_ns
        # dma-bound: near-zero benefit from more SPEs
        assert t8 > t4 * 0.7


class TestFusedDMAProfile:
    def test_fused_ledger_beats_staged(self, small_field):
        from repro.core.compose import compose_fields, downscale_field

        fh, fw = small_field.shape
        outer = downscale_field(fw // 2, fh // 2, fw, fh, prefilter=False)
        fused_wl = Workload.from_field(compose_fields(outer, small_field))
        prof = CellModel().fused_dma_profile(
            fused_wl,
            {"correct": Workload.from_field(small_field),
             "downscale": Workload.from_field(outer)})
        assert set(prof["stages"]) == {"correct", "downscale"}
        assert prof["staged_total_bytes"] == sum(
            s["total_bytes"] for s in prof["stages"].values())
        # the fused single pass moves strictly fewer bytes
        assert prof["savings_ratio"] > 1.0
        assert prof["bytes_saved"] == (prof["staged_total_bytes"]
                                       - prof["fused"]["total_bytes"])
