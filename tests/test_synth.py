"""Synthetic scene generator tests."""

import numpy as np
import pytest

from repro.video.synth import checkerboard, circle_grid, gradient, noise, radial_circles, urban
from repro.errors import ImageFormatError


class TestCheckerboard:
    def test_shape_and_dtype(self):
        img = checkerboard(32, 24, square=8)
        assert img.shape == (24, 32)
        assert img.dtype == np.uint8

    def test_alternation(self):
        img = checkerboard(16, 16, square=4, low=0, high=255)
        assert img[0, 0] == 0
        assert img[0, 4] == 255
        assert img[4, 0] == 255
        assert img[4, 4] == 0

    def test_only_two_levels(self):
        img = checkerboard(20, 20, square=3, low=10, high=200)
        assert set(np.unique(img)) == {10, 200}

    def test_validation(self):
        with pytest.raises(ImageFormatError):
            checkerboard(0, 10)
        with pytest.raises(ImageFormatError):
            checkerboard(10, 10, square=0)


class TestCircleGrid:
    def test_point_count(self):
        _, pts = circle_grid(64, 64, rings=3, spokes=8)
        assert pts.shape == (1 + 3 * 8, 2)

    def test_center_dot_first(self):
        img, pts = circle_grid(65, 65, rings=1, spokes=4)
        assert pts[0, 0] == pytest.approx(32.0)
        assert pts[0, 1] == pytest.approx(32.0)
        assert img[32, 32] == 255

    def test_dots_inside_frame(self):
        _, pts = circle_grid(64, 48, rings=4, spokes=12)
        assert pts[:, 0].min() >= 0 and pts[:, 0].max() <= 63
        assert pts[:, 1].min() >= 0 and pts[:, 1].max() <= 47

    def test_validation(self):
        with pytest.raises(ImageFormatError):
            circle_grid(64, 64, rings=0)
        with pytest.raises(ImageFormatError):
            circle_grid(64, 64, spokes=2)
        with pytest.raises(ImageFormatError):
            circle_grid(64, 64, margin=1.5)


class TestOtherScenes:
    def test_radial_circles_center_dark(self):
        img = radial_circles(65, 65, rings=4)
        assert img[32, 32] == 0
        assert img.max() == 255

    def test_urban_deterministic_by_seed(self):
        a = urban(48, 48, seed=3)
        b = urban(48, 48, seed=3)
        c = urban(48, 48, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_urban_has_structure(self):
        img = urban(64, 64)
        assert img.std() > 10.0

    def test_gradient_monotone(self):
        img = gradient(32, 8, horizontal=True)
        assert img[0, 0] == 0 and img[0, -1] == 255
        assert np.all(np.diff(img[0].astype(int)) >= 0)
        vert = gradient(8, 32, horizontal=False)
        assert vert[-1, 0] == 255

    def test_noise_deterministic(self):
        np.testing.assert_array_equal(noise(16, 16, seed=1), noise(16, 16, seed=1))

    def test_validation(self):
        with pytest.raises(ImageFormatError):
            radial_circles(10, 10, rings=0)
        with pytest.raises(ImageFormatError):
            urban(10, 10, buildings=0)
        with pytest.raises(ImageFormatError):
            gradient(0, 4)
