"""Meta tests: documentation, registry and bench tree stay consistent."""

import os
import re

import pytest

from repro.bench.experiments import EXPERIMENTS

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(path):
    with open(os.path.join(REPO, path)) as fh:
        return fh.read()


class TestExperimentRegistry:
    def test_every_model_experiment_has_a_bench_file(self):
        bench_dir = os.path.join(REPO, "benchmarks")
        benches = "".join(sorted(os.listdir(bench_dir)))
        for exp_id in EXPERIMENTS:
            assert f"bench_{exp_id.lower()}" in benches.replace("bench_", "bench_"), \
                f"no benchmarks/bench_{exp_id.lower()}*.py for {exp_id}"

    def test_every_bench_file_maps_to_a_registered_experiment(self):
        bench_dir = os.path.join(REPO, "benchmarks")
        ids = {e.lower() for e in EXPERIMENTS}
        for name in os.listdir(bench_dir):
            m = re.match(r"bench_([a-z]\d+)_", name)
            if m:
                assert m.group(1) in ids, f"{name} not in the registry"

    def test_experiments_md_covers_every_id(self):
        text = read("EXPERIMENTS.md")
        for exp_id in EXPERIMENTS:
            assert f"## {exp_id} " in text or f"| {exp_id} |" in text, \
                f"{exp_id} missing from EXPERIMENTS.md"

    def test_design_md_indexes_every_id(self):
        text = read("DESIGN.md")
        for exp_id in EXPERIMENTS:
            if exp_id == "H2":
                continue  # host validation is indexed in EXPERIMENTS.md only
            assert f"| {exp_id} |" in text, f"{exp_id} missing from DESIGN.md index"


class TestDesignMismatchNote:
    def test_mismatch_disclosed_first(self):
        text = read("DESIGN.md")
        assert "PAPER TEXT MISMATCH" in text.split("\n\n")[1] or \
            "PAPER TEXT MISMATCH" in text[:600]

    def test_experiments_md_carries_the_caveat(self):
        assert "Provenance caveat" in read("EXPERIMENTS.md")


class TestReadme:
    def test_mentions_every_example(self):
        text = read("README.md")
        examples = [f for f in os.listdir(os.path.join(REPO, "examples"))
                    if f.endswith(".py")]
        missing = [e for e in examples if e not in text]
        # the video wall example was added after the table; allow <= 1 gap
        assert len(missing) <= 1, f"README does not mention: {missing}"

    def test_quickstart_code_runs(self):
        """The README's quickstart block must actually execute."""
        text = read("README.md")
        m = re.search(r"```python\n(.*?)```", text, re.S)
        assert m, "no python quickstart block in README"
        code = m.group(1)
        # give the snippet the frame(s) it references
        import numpy as np

        ns = {"frame": np.zeros((512, 512), dtype=np.uint8),
              "frames": [np.zeros((512, 512), dtype=np.uint8)]}
        exec(compile(code, "README-quickstart", "exec"), ns)  # noqa: S102

    def test_install_commands_documented(self):
        text = read("README.md")
        assert "pytest tests/" in text
        assert "--benchmark-only" in text


class TestDocsTree:
    def test_docs_exist(self):
        for doc in ("kernel.md", "platform_models.md", "parallelization.md",
                    "calibration.md", "workloads.md"):
            assert os.path.exists(os.path.join(REPO, "docs", doc)), doc

    def test_docs_reference_real_modules(self):
        """Module paths mentioned in docs must import."""
        import importlib

        pattern = re.compile(r"`(repro(?:\.[a-z_]+)+)`")
        for doc in os.listdir(os.path.join(REPO, "docs")):
            text = read(os.path.join("docs", doc))
            for match in set(pattern.findall(text)):
                parts = match.split(".")
                # try as module; fall back to attribute of parent module
                try:
                    importlib.import_module(match)
                except ImportError:
                    parent = importlib.import_module(".".join(parts[:-1]))
                    assert hasattr(parent, parts[-1]), \
                        f"{doc} references unknown {match}"
