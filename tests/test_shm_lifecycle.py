"""Tests: shared-memory segment lifecycle survives crashes and GC.

The executors publish named POSIX segments; losing track of one leaks
it until reboot and makes Python's resource tracker print warnings at
interpreter exit.  These tests pin the hardened lifecycle: finalizers
release segments under fork and spawn, after worker crashes, and even
when an executor is dropped without ``close()`` — with a *subprocess*
asserting that nothing survives to the tracker's shutdown sweep.
"""

import subprocess
import sys
import textwrap
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.remap import RemapLUT
from repro.parallel.procpool import ProcessExecutor, SharedMemoryExecutor
from repro.parallel.ring import RingEngine
from repro.parallel.shmseg import (
    FrameSegments,
    SharedTables,
    attach_tables,
    release_segments,
    share_array,
)

pytestmark = pytest.mark.tier1


def _segment_names(executor):
    return [shm.name for group in executor._segment_groups
            for shm in group._shms]


def _assert_unlinked(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestSegmentGroups:
    def test_release_is_idempotent(self):
        seg = FrameSegments((8, 8), np.uint8, (8, 8))
        name = seg.src_shm.name
        seg.release()
        assert seg.released
        seg.release()  # second call is a no-op
        _assert_unlinked([name])

    def test_gc_releases_segments(self):
        seg = FrameSegments((8, 8), np.uint8, (8, 8))
        names = [seg.src_shm.name, seg.dst_shm.name]
        del seg
        _assert_unlinked(names)

    def test_release_segments_tolerates_missing(self):
        shm, _ = share_array(np.arange(4))
        release_segments([shm])
        release_segments([shm])  # already unlinked: must not raise

    def test_shared_tables_roundtrip(self, small_field, random_image):
        lut = RemapLUT(small_field, method="bilinear")
        tables = SharedTables(lut)
        segments, _, attached = attach_tables(tables.spec, tables.meta)
        try:
            np.testing.assert_array_equal(attached.apply(random_image),
                                          lut.apply(random_image))
        finally:
            for shm in segments:
                shm.close()
            tables.release()


class TestExecutorLifecycle:
    @pytest.mark.parametrize("cls", [ProcessExecutor, SharedMemoryExecutor])
    def test_close_unlinks_every_segment(self, small_field, cls):
        lut = RemapLUT(small_field, method="bilinear")
        ex = cls(lut, (64, 64), workers=1)
        names = _segment_names(ex)
        assert names
        ex.close()
        _assert_unlinked(names)

    def test_dropped_executor_unlinks_via_gc(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        ex = SharedMemoryExecutor(lut, (64, 64), workers=1)
        names = _segment_names(ex)
        del ex  # no close(): the finalizers must still fire
        import gc
        gc.collect()
        _assert_unlinked(names)

    def test_ring_close_unlinks_every_segment(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        engine = RingEngine(lut, (64, 64), workers=1, depth=2)
        names = [shm.name for group in engine._segment_groups
                 for shm in group._shms]
        engine.close()
        _assert_unlinked(names)


# Run inside a subprocess: build an executor, run one frame, SIGKILL a
# worker, then exit WITHOUT close() — the tracker's shutdown sweep must
# find nothing to warn about, and the segments must be gone.
_CRASH_SCRIPT = textwrap.dedent("""
    import sys

    import numpy as np

    from repro.core.intrinsics import CameraIntrinsics, FisheyeIntrinsics
    from repro.core.lens import EquidistantLens
    from repro.core.mapping import perspective_map
    from repro.core.remap import RemapLUT
    from repro.parallel.{module} import {factory}

    SIZE = 64
    circle = SIZE / 2.0 - 1.0
    sensor = FisheyeIntrinsics.centered(SIZE, SIZE, focal=circle / (np.pi / 2.0))
    lens = EquidistantLens(sensor.focal)
    focal = sensor.focal * 0.5
    out = CameraIntrinsics(fx=focal, fy=focal, cx=(SIZE - 1) / 2.0,
                           cy=(SIZE - 1) / 2.0, width=SIZE, height=SIZE)
    field = perspective_map(sensor, lens, out)
    lut = RemapLUT(field, method="bilinear")
    frame = np.arange(SIZE * SIZE, dtype=np.uint8).reshape(SIZE, SIZE)

    {body}

    print("NAMES:" + ",".join(names))
    sys.stdout.flush()
    # deliberately no close(): rely on finalizers + atexit
""")

_EXECUTOR_BODY = """
import time
ex = SharedMemoryExecutor(lut, (SIZE, SIZE), workers=2, context="{context}")
ex.run(lut, frame)
# kill the workers MID-TASK (an idle pool worker blocks in get() holding
# the inqueue lock; killing it there deadlocks Pool teardown — a CPython
# limitation, not what this test pins down)
ex._pool.map_async(time.sleep, [5.0, 5.0])
time.sleep(0.5)
for p in ex._pool._pool:
    p.terminate()  # crash every worker mid-remap
names = [shm.name for group in ex._segment_groups for shm in group._shms]
"""

_RING_BODY = """
engine = RingEngine(lut, (SIZE, SIZE), workers=2, depth=2, context="{context}")

def endless():
    while True:  # only the crash can end this stream
        yield frame

try:
    for k, _ in enumerate(engine.stream(endless())):
        if k == 1:
            engine._procs[0].terminate()
except Exception as exc:
    assert type(exc).__name__ == "StreamError", exc
names = [shm.name for group in engine._segment_groups for shm in group._shms]
"""


def _run_crash_script(module, factory, body, context):
    script = _CRASH_SCRIPT.format(module=module, factory=factory,
                                  body=body.format(context=context))
    proc = subprocess.run([sys.executable, "-c", script],
                          capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr
    names_line = [l for l in proc.stdout.splitlines() if l.startswith("NAMES:")]
    assert names_line, proc.stdout
    names = [n for n in names_line[0][len("NAMES:"):].split(",") if n]
    assert names
    return names, proc.stderr


class TestCrashedWorkerLeavesNoLeak:
    """The regression test the lifecycle hardening exists for."""

    @pytest.mark.parametrize("context", ["fork", "spawn"])
    def test_executor_crash_no_tracker_warnings(self, context):
        names, stderr = _run_crash_script(
            "procpool", "SharedMemoryExecutor", _EXECUTOR_BODY, context)
        assert "resource_tracker" not in stderr, stderr
        assert "leaked" not in stderr, stderr
        _assert_unlinked(names)

    @pytest.mark.parametrize("context", ["fork", "spawn"])
    def test_ring_crash_no_tracker_warnings(self, context):
        names, stderr = _run_crash_script(
            "ring", "RingEngine", _RING_BODY, context)
        assert "resource_tracker" not in stderr, stderr
        assert "leaked" not in stderr, stderr
        _assert_unlinked(names)


class TestEarlyStreamClose:
    """Abandoning a ring stream mid-flight must tear everything down.

    Regression tests for the early-close leak: a consumer that breaks
    out of ``corrected_stream(engine="ring")`` (or closes the generator
    explicitly) used to leave the persistent workers running and every
    shared segment linked until interpreter exit.
    """

    def _engine_and_stream(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        engine = RingEngine(lut, (64, 64), workers=2, depth=2)
        frame = np.zeros((64, 64), dtype=np.uint8)

        def endless():
            while True:
                yield frame

        return engine, engine.stream(endless())

    def test_generator_close_stops_workers_and_unlinks(self, small_field):
        engine, gen = self._engine_and_stream(small_field)
        names = [shm.name for group in engine._segment_groups
                 for shm in group._shms]
        next(gen)
        next(gen)
        gen.close()  # early abandon: consumer walks away mid-stream
        assert engine._closed
        for p in engine._procs:
            p.join(timeout=5.0)
            assert not p.is_alive()
        _assert_unlinked(names)

    def test_break_out_of_for_loop_unlinks(self, small_field):
        engine, gen = self._engine_and_stream(small_field)
        names = [shm.name for group in engine._segment_groups
                 for shm in group._shms]
        for k, _ in enumerate(gen):
            if k == 1:
                break
        del gen  # the for-loop's GeneratorExit path, then GC
        import gc
        gc.collect()
        assert engine._closed
        _assert_unlinked(names)

    def test_corrected_stream_early_close_tears_down_ring(self, small_field,
                                                          monkeypatch):
        from repro.parallel import ring as ring_mod
        from repro.video.stream import corrected_stream

        engines = []
        real_for_stream = RingEngine.for_stream.__func__

        def spy_for_stream(cls, lut, first_frame, **kwargs):
            engine = real_for_stream(cls, lut, first_frame, **kwargs)
            engines.append(engine)
            return engine

        monkeypatch.setattr(ring_mod.RingEngine, "for_stream",
                            classmethod(spy_for_stream))
        frame = np.zeros((64, 64), dtype=np.uint8)

        def endless():
            while True:
                yield frame

        gen = corrected_stream(endless(), small_field, engine="ring",
                               workers=2, depth=2)
        next(gen)
        next(gen)
        gen.close()
        assert len(engines) == 1
        engine = engines[0]
        assert engine._closed
        names = [shm.name for group in engine._segment_groups
                 for shm in group._shms]
        for p in engine._procs:
            p.join(timeout=5.0)
            assert not p.is_alive()
        _assert_unlinked(names)

    def test_exception_in_consumer_loop_unlinks(self, small_field):
        from repro.video.stream import corrected_stream

        frame = np.zeros((64, 64), dtype=np.uint8)

        def endless():
            while True:
                yield frame

        gen = corrected_stream(endless(), small_field, engine="ring",
                               workers=1, depth=2)
        with pytest.raises(KeyboardInterrupt):
            for k, _ in enumerate(gen):
                if k == 2:
                    raise KeyboardInterrupt
        gen.close()
        import gc
        gc.collect()
        leftover = [p for p in __import__("multiprocessing").active_children()
                    if p.name.startswith("ring-worker-")]
        for p in leftover:
            p.join(timeout=5.0)
        assert not [p for p in leftover if p.is_alive()]
