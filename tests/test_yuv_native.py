"""The zero-copy YUV420-native path: colour math, pooling, caching,
planar shared-memory slots, per-plane band scheduling, and the pixfmt
knob on every streaming front end."""

import subprocess
import sys
import threading
import tracemalloc

import numpy as np
import pytest

from repro.core.color import rgb_to_yuv, rgb_to_yuv420, yuv420_to_rgb
from repro.core.lutcache import LUTCache
from repro.core.mapping import chroma_half_field
from repro.core.remap import RemapLUT
from repro.errors import ImageFormatError, ScheduleError
from repro.video.stream import corrected_stream
from repro.video.yuv import (PLANE_NAMES, YUV420Frame, YUVCorrector,
                             to_yuv420_stream)


def _psnr(a, b):
    mse = np.mean((a.astype(np.float64) - b.astype(np.float64)) ** 2)
    return float("inf") if mse == 0 else 10.0 * np.log10(255.0 ** 2 / mse)


def _smooth_rgb(h=64, w=64):
    ys, xs = np.mgrid[0:h, 0:w]
    r = 40 + 140 * xs / (w - 1)
    g = 60 + 120 * ys / (h - 1)
    b = 200 - 100 * (xs + ys) / (w + h - 2)
    return np.clip(np.stack([r, g, b], axis=-1), 0, 255).astype(np.uint8)


def _frames(rng, n, h=64, w=64):
    for _ in range(n):
        yield YUV420Frame(
            rng.integers(0, 256, (h, w), dtype=np.uint8),
            rng.integers(0, 256, (h // 2, w // 2), dtype=np.uint8),
            rng.integers(0, 256, (h // 2, w // 2), dtype=np.uint8))


# ----------------------------------------------------------------------
# vectorized colour conversion
# ----------------------------------------------------------------------
class TestVectorizedColor:
    def test_roundtrip_psnr_on_smooth_image(self):
        rgb = _smooth_rgb()
        back = yuv420_to_rgb(*rgb_to_yuv420(rgb))
        # 4:2:0 chroma subsampling on a smooth gradient loses little
        assert _psnr(rgb, back) > 30.0

    def test_matches_float64_reference(self):
        rng = np.random.default_rng(3)
        rgb = rng.integers(0, 256, (32, 32, 3), dtype=np.uint8)
        y, u, v = rgb_to_yuv420(rgb)
        ref = rgb_to_yuv(rgb)  # float64 per-channel reference
        ref_y = np.clip(np.rint(ref[..., 0]), 0, 255)
        assert np.abs(y.astype(np.int16) - ref_y.astype(np.int16)).max() <= 1
        # chroma = 2x2 box filter of the reference chroma, +128 offset
        ref_u = ref[..., 1].reshape(16, 2, 16, 2).mean(axis=(1, 3)) + 128
        assert np.abs(u.astype(np.float64) - ref_u).max() <= 1.0
        assert y.dtype == u.dtype == v.dtype == np.uint8

    def test_from_rgb_to_rgb_shapes(self):
        f = YUV420Frame.from_rgb(_smooth_rgb(16, 20))
        assert f.y.shape == (16, 20)
        assert f.u.shape == f.v.shape == (8, 10)
        assert f.to_rgb().shape == (16, 20, 3)

    def test_odd_size_rejected(self):
        with pytest.raises(ImageFormatError):
            rgb_to_yuv420(np.zeros((15, 16, 3), dtype=np.uint8))


# ----------------------------------------------------------------------
# pooled zero-allocation correct()
# ----------------------------------------------------------------------
class TestPooledCorrect:
    def test_steady_state_allocates_nothing(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        rng = np.random.default_rng(0)
        frames = list(_frames(rng, 4))
        corr.correct(frames[0])  # warm the pool and weight tables
        corr.correct(frames[1])
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for f in frames:
            corr.correct(f)  # copy=False: pooled planes only
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        grown = sum(d.size_diff for d in after.compare_to(before, "filename")
                    if d.size_diff > 0)
        # no per-frame plane allocations: only trace bookkeeping noise
        assert grown < 16 * 1024

    def test_copy_false_aliases_pool(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        rng = np.random.default_rng(1)
        a, b = list(_frames(rng, 2))
        out_a = corr.correct(a)
        kept = out_a.y.copy()
        out_b = corr.correct(b)
        assert out_b.y is out_a.y  # same pooled buffer
        assert not np.array_equal(out_a.y, kept) or np.array_equal(a.y, b.y)

    def test_copy_true_owns_planes(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        rng = np.random.default_rng(2)
        a, b = list(_frames(rng, 2))
        out_a = corr.correct(a, copy=True)
        kept = out_a.y.copy()
        corr.correct(b)
        assert np.array_equal(out_a.y, kept)

    def test_planes_match_single_plane_oracle(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        rng = np.random.default_rng(3)
        (f,) = list(_frames(rng, 1))
        out = corr.correct(f, copy=True)
        assert np.array_equal(out.y, corr.luma_lut.apply(f.y))
        assert np.array_equal(out.u, corr.chroma_lut.apply(f.u))
        assert np.array_equal(out.v, corr.chroma_lut.apply(f.v))

    def test_work_pixels_is_1_5x_luma(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        h, w = corr.out_shape
        assert corr.work_pixels() == int(h * w * 1.5)

    def test_traffic_ledger_sums_planes(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        t = corr.traffic_per_frame()
        assert set(t["planes"]) == set(PLANE_NAMES)
        assert t["total_bytes"] == sum(
            p["total_bytes"] for p in t["planes"].values())
        assert t["pixels"] == corr.work_pixels()


# ----------------------------------------------------------------------
# LUT cache keying for the derived chroma map
# ----------------------------------------------------------------------
class TestChromaCacheKeys:
    def test_luma_and_chroma_keys_distinct(self, small_field):
        cache = LUTCache()
        cfield = chroma_half_field(small_field)
        k_luma = cache.key_for(small_field, "bilinear", "constant", 0.0)
        k_chroma = cache.key_for(cfield, "bilinear", "constant", 128.0)
        assert k_luma != k_chroma

    def test_two_correctors_share_both_entries(self, small_field):
        cache = LUTCache()
        a = YUVCorrector.from_field(small_field, lut_cache=cache)
        b = YUVCorrector.from_field(small_field, lut_cache=cache)
        assert cache.misses == 2      # one luma build + one chroma build
        assert cache.hits == 2        # the second corrector hit both
        assert a.luma_lut is b.luma_lut
        assert a.chroma_lut is b.chroma_lut

    def test_pixfmts_do_not_collide(self, small_field):
        # an RGB-path consumer and a planar consumer on one cache: the
        # chroma entry is keyed by the derived field's content, so the
        # packed LUT is reused and only the chroma build is added
        cache = LUTCache()
        packed = cache.get(small_field)
        corr = YUVCorrector.from_field(small_field, lut_cache=cache)
        assert corr.luma_lut is packed
        assert corr.chroma_lut is not packed
        assert corr.chroma_lut.out_shape == tuple(
            s // 2 for s in packed.out_shape)

    def test_chroma_build_single_flight(self, small_field):
        from repro.obs.telemetry import Telemetry, scoped

        cache = LUTCache()
        cfield = chroma_half_field(small_field)
        got = []
        barrier = threading.Barrier(4)

        tel = Telemetry()

        def build():
            # scoped() is context-local: enter it per thread
            with scoped(tel):
                barrier.wait()
                got.append(cache.get(cfield, fill=128.0))

        threads = [threading.Thread(target=build) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 4
        # single flight: everyone gets the one object, built exactly once
        assert all(g is got[0] for g in got)
        assert tel.snapshot()["counters"]["lutcache.builds"] == 1


# ----------------------------------------------------------------------
# planar shared-memory slots and table publication
# ----------------------------------------------------------------------
class TestPlanarSegments:
    def test_roundtrip_through_attached_views(self):
        from repro.parallel.shmseg import (PlanarFrameSegments,
                                           attach_any_slot)

        shapes = YUV420Frame.plane_shapes(16, 12)
        seg = PlanarFrameSegments(shapes, np.uint8, shapes)
        try:
            rng = np.random.default_rng(5)
            planes = [rng.integers(0, 256, s, dtype=np.uint8)
                      for s in shapes]
            for view, plane in zip(seg.src_views, planes):
                np.copyto(view, plane)
            segs, srcs, dsts = attach_any_slot(seg.spec)
            try:
                assert len(srcs) == len(dsts) == 3
                for got, want in zip(srcs, planes):
                    assert np.array_equal(got, want)
            finally:
                for s in segs:
                    s.close()
        finally:
            seg.release()

    def test_attach_any_slot_wraps_flat_slots(self, small_field):
        from repro.parallel.shmseg import FrameSegments, attach_any_slot

        lut = RemapLUT(small_field)
        seg = FrameSegments(lut.src_shape, np.uint8, lut.out_shape)
        try:
            segs, srcs, dsts = attach_any_slot(seg.spec)
            try:
                assert len(srcs) == len(dsts) == 1
                assert srcs[0].shape == lut.src_shape
            finally:
                for s in segs:
                    s.close()
        finally:
            seg.release()

    def test_planar_tables_publish_both_luts(self, small_field):
        from repro.parallel.shmseg import SharedTables, attach_planar_tables

        corr = YUVCorrector.from_field(small_field)
        tables = SharedTables(corr.luma_lut, chroma=corr.chroma_lut)
        try:
            assert "chroma" in tables.meta
            segs, luts = attach_planar_tables(tables.spec, tables.meta)
            try:
                assert len(luts) == 3
                assert luts[1] is luts[2]
                rng = np.random.default_rng(6)
                (f,) = list(_frames(rng, 1))
                assert np.array_equal(luts[0].apply(f.y),
                                      corr.luma_lut.apply(f.y))
                assert np.array_equal(luts[1].apply(f.u),
                                      corr.chroma_lut.apply(f.u))
            finally:
                for s in segs:
                    s.close()
        finally:
            tables.release()

    def test_flat_attach_ignores_chroma_keys(self, small_field):
        from repro.parallel.shmseg import SharedTables, attach_tables

        corr = YUVCorrector.from_field(small_field)
        tables = SharedTables(corr.luma_lut, chroma=corr.chroma_lut)
        try:
            segs, _, lut = attach_tables(tables.spec, tables.meta)
            try:
                assert lut.out_shape == corr.luma_lut.out_shape
            finally:
                for s in segs:
                    s.close()
        finally:
            tables.release()


# ----------------------------------------------------------------------
# per-plane band scheduling: ring engine
# ----------------------------------------------------------------------
class TestPlanarRing:
    def test_ring_matches_sync_bit_exact(self, small_field):
        rng = np.random.default_rng(7)
        frames = list(_frames(rng, 5))
        corr = YUVCorrector.from_field(small_field)
        want = [corr.correct(f, copy=True) for f in frames]
        got = list(corrected_stream(iter(frames), small_field,
                                    pixfmt="yuv420", engine="ring",
                                    workers=2, depth=2, copy=True))
        assert len(got) == len(want)
        for g, e in zip(got, want):
            assert isinstance(g, YUV420Frame)
            assert np.array_equal(g.y, e.y)
            assert np.array_equal(g.u, e.u)
            assert np.array_equal(g.v, e.v)

    def test_ring_requires_chroma_lut_for_planar_frames(self, small_field):
        from repro.parallel.ring import ring_stream

        lut = RemapLUT(small_field)
        rng = np.random.default_rng(8)
        with pytest.raises(ScheduleError):
            list(ring_stream(lut, _frames(rng, 1), workers=1, depth=1))


# ----------------------------------------------------------------------
# the pixfmt knob on every front end
# ----------------------------------------------------------------------
class TestPixfmtFrontEnds:
    def test_unknown_pixfmt_rejected(self, small_field):
        with pytest.raises(ImageFormatError):
            list(corrected_stream(iter(()), small_field, pixfmt="bogus"))

    def test_sync_stream_yields_planar_frames(self, small_field):
        rng = np.random.default_rng(9)
        frames = list(_frames(rng, 3))
        corr = YUVCorrector.from_field(small_field)
        want = [corr.correct(f, copy=True) for f in frames]
        got = list(corrected_stream(iter(frames), small_field,
                                    pixfmt="yuv420", copy=True))
        for g, e in zip(got, want):
            assert np.array_equal(g.y, e.y)
            assert np.array_equal(g.u, e.u)
            assert np.array_equal(g.v, e.v)

    def test_plane_counters_emitted(self, small_field):
        from repro.obs.export import labeled
        from repro.obs.telemetry import Telemetry, scoped

        rng = np.random.default_rng(10)
        frames = list(_frames(rng, 3))
        tel = Telemetry()
        with scoped(tel):
            list(corrected_stream(iter(frames), small_field,
                                  pixfmt="yuv420", copy=True))
        counters = tel.snapshot()["counters"]
        for plane in PLANE_NAMES:
            assert counters[labeled("stream.frames", plane=plane)] == 3

    def test_broker_session_in_order(self, small_field):
        from repro.serve.broker import StreamBroker

        rng = np.random.default_rng(11)
        frames = list(_frames(rng, 5))
        corr = YUVCorrector.from_field(small_field)
        want = [corr.correct(f, copy=True) for f in frames]
        with StreamBroker(workers=2, slot_budget=4) as broker:
            got = list(broker.open(iter(frames), small_field,
                                   name="yuv-test", pixfmt="yuv420",
                                   depth=2))
        assert len(got) == len(want)
        for g, e in zip(got, want):
            assert isinstance(g, YUV420Frame)
            assert np.array_equal(g.y, e.y)
            assert np.array_equal(g.u, e.u)
            assert np.array_equal(g.v, e.v)

    def test_broker_rejects_non_planar_items(self, small_field):
        from repro.serve.broker import StreamBroker

        gray = [np.zeros((64, 64), dtype=np.uint8)]
        with StreamBroker(workers=1, slot_budget=4) as broker:
            with pytest.raises(ScheduleError):
                broker.open(iter(gray), small_field, pixfmt="yuv420")

    def test_broker_rejects_unknown_pixfmt(self, small_field):
        from repro.serve.broker import StreamBroker

        with StreamBroker(workers=1, slot_budget=4) as broker:
            with pytest.raises(ScheduleError):
                broker.open(iter(()), small_field, pixfmt="bogus")

    def test_to_yuv420_stream_adapts_gray(self):
        gray = [np.full((16, 16), k, dtype=np.uint8) for k in range(3)]
        out = list(to_yuv420_stream(gray))
        assert len(out) == 3
        for k, f in enumerate(out):
            assert np.array_equal(f.y, gray[k])
            assert f.u.shape == (8, 8)
        # chroma planes are shared across frames (no reallocation)
        assert out[0].u is out[1].u

    def test_cli_pixfmt_yuv420(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stream", "--pixfmt", "yuv420",
             "--frames", "3", "--width", "64", "--height", "64"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "pixfmt=yuv420" in proc.stdout
        assert "3 frames" in proc.stdout


# ----------------------------------------------------------------------
# planar DMA accounting against the Cell model
# ----------------------------------------------------------------------
class TestPlanarDMA:
    def test_planar_profile_sums_planes(self, small_field):
        from repro.accel.cellbe import CellModel
        from repro.accel.platform import Workload

        corr = YUVCorrector.from_field(small_field)
        wl_y = Workload.from_field(
            small_field, lut_entry_bytes=corr.luma_lut.entry_bytes())
        wl_c = Workload.from_field(
            corr.chroma_field, lut_entry_bytes=corr.chroma_lut.entry_bytes())
        prof = CellModel().planar_dma_profile(
            {"y": wl_y, "u": wl_c, "v": wl_c}, tile_rows=16)
        assert set(prof["planes"]) == set(PLANE_NAMES)
        assert prof["total_bytes"] == sum(
            p["total_bytes"] for p in prof["planes"].values())
        # chroma planes tile at half the luma band height
        assert prof["planes"]["y"]["tile_rows"] == 16
        assert prof["planes"]["u"]["tile_rows"] == 8

    def test_remap_traffic_ledger(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        t = lut.traffic_per_frame()
        n = lut.out_shape[0] * lut.out_shape[1]
        assert t["pixels"] == n
        assert t["gather_bytes"] == n * 4  # 4 taps, 1 channel, 1 B
        assert t["lut_bytes"] == n * lut.entry_bytes()
        assert t["total_bytes"] == (t["gather_bytes"] + t["lut_bytes"]
                                    + t["out_bytes"])
