"""Tests: vignetting model, multi-view composition, sensor noise."""

import numpy as np
import pytest

from repro.core.multiview import ViewSpec, compose_views, quad_view
from repro.core.remap import RemapLUT
from repro.core.vignette import VignetteModel, correct_vignette
from repro.video.sensor import SensorNoise
from repro.errors import GeometryError, ImageFormatError, MappingError


# ----------------------------------------------------------------------
# Vignetting
# ----------------------------------------------------------------------
class TestVignetteModel:
    @pytest.fixture()
    def model(self, small_sensor, small_lens):
        return VignetteModel(small_lens, small_sensor, alpha=3.0)

    def test_center_full_illumination(self, model):
        assert float(model.falloff_at_radius(0.0)) == pytest.approx(1.0)

    def test_monotone_decreasing(self, model):
        radii = np.linspace(0, 30, 20)
        fall = model.falloff_at_radius(radii)
        assert all(a >= b - 1e-12 for a, b in zip(fall, fall[1:]))

    def test_floor_respected(self, small_sensor, small_lens):
        model = VignetteModel(small_lens, small_sensor, alpha=6.0, floor=0.2)
        assert float(model.falloff_at_radius(30.0)) >= 0.2

    def test_cos4_law_value(self, small_sensor, small_lens):
        model = VignetteModel(small_lens, small_sensor, alpha=4.0, floor=0.01)
        r45 = float(small_lens.angle_to_radius(np.pi / 4))
        assert float(model.falloff_at_radius(r45)) == pytest.approx(
            np.cos(np.pi / 4) ** 4, rel=1e-6)

    def test_apply_darkens_periphery_not_center(self, model):
        img = np.full((64, 64), 200, dtype=np.uint8)
        out = model.apply(img)
        assert out[32, 32] >= 198
        assert out[32, 2] < 150

    def test_apply_geometry_checked(self, model):
        with pytest.raises(GeometryError):
            model.apply(np.zeros((10, 10), dtype=np.uint8))

    def test_gain_inverts_falloff(self, model):
        img = np.full((64, 64), 128, dtype=np.uint8)
        dark = model.apply(img)
        restored = correct_vignette(dark, model.gain_map())
        # within the un-capped gain region the roundtrip is near-exact
        inner = restored[20:44, 20:44]
        assert np.abs(inner.astype(int) - 128).max() <= 2

    def test_gain_cap(self, small_sensor, small_lens):
        model = VignetteModel(small_lens, small_sensor, alpha=6.0, floor=0.01)
        gains = model.gain_map(max_gain=4.0)
        assert gains.max() <= 4.0

    def test_gain_for_field_aligned(self, model, small_field):
        gains = model.gain_for_field(small_field)
        assert gains.shape == small_field.shape
        # output centre looks at the fisheye centre: gain ~ 1
        assert gains[32, 32] == pytest.approx(1.0, abs=0.01)
        # output edge looks at the periphery: gain > 1
        assert gains[32, 2] > 1.5

    def test_fused_correction_pipeline(self, model, small_field, gradient_image):
        """Remap then out-domain gain == the fused formulation."""
        dark = model.apply(gradient_image)
        lut = RemapLUT(small_field)
        remapped = lut.apply(dark)
        corrected = correct_vignette(remapped, model.gain_for_field(small_field))
        reference = lut.apply(gradient_image)
        inner = np.s_[16:48, 16:48]
        err = np.abs(corrected[inner].astype(int) - reference[inner].astype(int))
        assert np.median(err) <= 2

    def test_validation(self, small_sensor, small_lens):
        with pytest.raises(GeometryError):
            VignetteModel(small_lens, small_sensor, alpha=-1.0)
        with pytest.raises(GeometryError):
            VignetteModel(small_lens, small_sensor, floor=0.0)
        model = VignetteModel(small_lens, small_sensor)
        with pytest.raises(GeometryError):
            model.gain_map(max_gain=0.5)
        with pytest.raises(GeometryError):
            correct_vignette(np.zeros((4, 4)), np.ones((5, 5)))


# ----------------------------------------------------------------------
# Multi-view composition
# ----------------------------------------------------------------------
class TestComposeViews:
    def test_single_pane_matches_direct_map(self, small_sensor, small_lens):
        from repro.core.intrinsics import CameraIntrinsics
        from repro.core.mapping import perspective_map

        field = compose_views(small_sensor, small_lens,
                              [ViewSpec(0, 0, 64, 64, zoom=0.5)], 64, 64)
        focal = float(small_lens.magnification(1e-4)) * 0.5
        cam = CameraIntrinsics(fx=focal, fy=focal, cx=31.5, cy=31.5,
                               width=64, height=64)
        direct = perspective_map(small_sensor, small_lens, cam)
        np.testing.assert_allclose(field.map_x, direct.map_x, atol=1e-12)

    def test_pane_placement(self, small_sensor, small_lens):
        views = [ViewSpec(0, 0, 32, 32, zoom=0.5),
                 ViewSpec(32, 32, 32, 32, zoom=1.0)]
        field = compose_views(small_sensor, small_lens, views, 64, 64)
        mask = field.valid_mask()
        assert mask[:32, :32].all()
        assert mask[32:, 32:].all()
        # uncovered panes are invalid
        assert not mask[:32, 32:].any()

    def test_overlap_rejected(self, small_sensor, small_lens):
        views = [ViewSpec(0, 0, 40, 40), ViewSpec(20, 20, 40, 40)]
        with pytest.raises(MappingError):
            compose_views(small_sensor, small_lens, views, 64, 64)

    def test_out_of_bounds_pane_rejected(self, small_sensor, small_lens):
        with pytest.raises(MappingError):
            compose_views(small_sensor, small_lens,
                          [ViewSpec(40, 0, 32, 32)], 64, 64)

    def test_empty_views_rejected(self, small_sensor, small_lens):
        with pytest.raises(MappingError):
            compose_views(small_sensor, small_lens, [], 64, 64)

    def test_mosaic_corrects_in_one_pass(self, small_sensor, small_lens,
                                         random_image):
        views = [ViewSpec(0, 0, 32, 64, zoom=0.5),
                 ViewSpec(32, 0, 32, 64, zoom=1.2, pitch=0.4)]
        field = compose_views(small_sensor, small_lens, views, 64, 64)
        out = RemapLUT(field).apply(random_image)
        assert out.shape == (64, 64)
        # each pane independently equals its standalone correction
        lone = compose_views(small_sensor, small_lens,
                             [ViewSpec(0, 0, 32, 64, zoom=0.5)], 32, 64)
        np.testing.assert_array_equal(out[:, :32], RemapLUT(lone).apply(random_image))

    def test_viewspec_validation(self):
        with pytest.raises(MappingError):
            ViewSpec(0, 0, 0, 10)
        with pytest.raises(MappingError):
            ViewSpec(-1, 0, 10, 10)
        with pytest.raises(MappingError):
            ViewSpec(0, 0, 10, 10, zoom=0.0)


class TestQuadView:
    def test_quad_covers_everything(self, small_sensor, small_lens):
        field = quad_view(small_sensor, small_lens, 64, 64)
        assert field.coverage() > 0.95

    def test_quad_panes_differ(self, small_sensor, small_lens, random_image):
        field = quad_view(small_sensor, small_lens, 64, 64)
        out = RemapLUT(field).apply(random_image)
        assert not np.array_equal(out[:32, :32], out[:32, 32:])
        assert not np.array_equal(out[32:, :32], out[32:, 32:])

    def test_odd_size_rejected(self, small_sensor, small_lens):
        with pytest.raises(MappingError):
            quad_view(small_sensor, small_lens, 63, 64)

    def test_single_lut_for_whole_mosaic(self, small_sensor, small_lens):
        field = quad_view(small_sensor, small_lens, 64, 64)
        lut = RemapLUT(field)
        assert lut.out_shape == (64, 64)  # one table drives all four panes


# ----------------------------------------------------------------------
# Sensor noise
# ----------------------------------------------------------------------
class TestSensorNoise:
    def test_deterministic_per_seed_and_frame(self, gradient_image):
        noise = SensorNoise(seed=5)
        a = noise.apply(gradient_image, frame_index=3)
        b = noise.apply(gradient_image, frame_index=3)
        c = noise.apply(gradient_image, frame_index=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_mean_preserved(self, gradient_image):
        noise = SensorNoise(full_well=4000.0, read_noise=4.0, seed=1)
        noisy = noise.apply(gradient_image)
        assert abs(float(noisy.mean()) - float(gradient_image.mean())) < 2.0

    def test_noise_scales_inversely_with_full_well(self, gradient_image):
        small = SensorNoise(full_well=500.0, seed=2).apply(gradient_image)
        large = SensorNoise(full_well=50000.0, seed=2).apply(gradient_image)
        err_small = np.abs(small.astype(int) - gradient_image.astype(int)).std()
        err_large = np.abs(large.astype(int) - gradient_image.astype(int)).std()
        assert err_small > err_large

    def test_defects_injected(self, gradient_image):
        noise = SensorNoise(defect_rate=0.05, read_noise=0.0, seed=3)
        noisy = noise.apply(gradient_image)
        frac_extreme = float(((noisy == 0) | (noisy == 255)).mean())
        assert frac_extreme > 0.02

    def test_snr_increases_with_signal(self):
        noise = SensorNoise(full_well=4000.0, read_noise=6.0)
        assert noise.snr_db(1.0) > noise.snr_db(0.1)

    def test_validation(self, gradient_image):
        with pytest.raises(ImageFormatError):
            SensorNoise(full_well=0.0)
        with pytest.raises(ImageFormatError):
            SensorNoise(defect_rate=1.0)
        with pytest.raises(ImageFormatError):
            SensorNoise().apply(gradient_image.astype(np.float32))
        with pytest.raises(ImageFormatError):
            SensorNoise().snr_db(0.0)

    def test_calibration_survives_noise(self):
        """Robustness loop: blob calibration under realistic noise."""
        from repro.core.calibration import calibrate, detect_blobs
        from repro.core.intrinsics import FisheyeIntrinsics
        from repro.core.lens import EquidistantLens
        from repro.video.distort import FisheyeRenderer, scene_camera_for_sensor
        from repro.video.synth import circle_grid

        size = 256
        circle = size / 2.0 - 1.0
        sensor = FisheyeIntrinsics.centered(size, size, focal=circle / (np.pi / 2.0))
        lens = EquidistantLens(sensor.focal)
        scene_cam = scene_camera_for_sensor(sensor, lens, size, size)
        target, pts = circle_grid(size, size, rings=4, spokes=8, dot_radius=4,
                                  margin=0.7)
        frame = FisheyeRenderer(scene_cam, lens, sensor).render(target)
        noisy = SensorNoise(full_well=2000.0, read_noise=8.0, seed=9).apply(frame)

        xn, yn = scene_cam.normalize(pts[:, 0], pts[:, 1])
        thetas = np.arctan(np.hypot(xn, yn))
        blobs = detect_blobs(noisy.astype(float), min_area=4)
        assert len(blobs) == len(pts)
        blob_pts = np.array([[b.x, b.y] for b in blobs])
        guess = blob_pts.mean(axis=0)
        order = np.argsort(np.hypot(blob_pts[:, 0] - guess[0],
                                    blob_pts[:, 1] - guess[1]))
        result = calibrate(blob_pts[order][1:], np.sort(thetas)[1:],
                           center_guess=tuple(guess))
        assert result.focal == pytest.approx(sensor.focal, rel=0.02)
