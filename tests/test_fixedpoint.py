"""Fixed-point LUT tests: quantization invariants and integer kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fixedpoint import FixedPointLUT, max_abs_weight_error, quantize_weights
from repro.core.quality import psnr
from repro.core.remap import RemapLUT
from repro.errors import InterpolationError, MappingError

pytestmark = pytest.mark.tier1


class TestQuantizeWeights:
    def test_rows_sum_to_scale(self):
        rng = np.random.default_rng(0)
        w = rng.dirichlet(np.ones(4), size=50)  # rows sum to 1
        for bits in (2, 5, 8, 12):
            q = quantize_weights(w, bits)
            np.testing.assert_array_equal(q.sum(axis=1), 1 << bits)

    def test_zero_rows_stay_zero(self):
        q = quantize_weights(np.zeros((3, 4)), 8)
        np.testing.assert_array_equal(q, 0)

    def test_error_bounded_by_lsb(self):
        rng = np.random.default_rng(1)
        w = rng.dirichlet(np.ones(4), size=100)
        for bits in (4, 8):
            err = max_abs_weight_error(w, bits)
            # each weight is rounded to the nearest LSB; the balancing
            # correction adds at most a few LSBs on the largest tap
            assert err <= 4.0 / (1 << bits)

    def test_error_decreases_with_bits(self):
        rng = np.random.default_rng(2)
        w = rng.dirichlet(np.ones(4), size=64)
        errs = [max_abs_weight_error(w, b) for b in (2, 4, 6, 8, 10)]
        assert all(a >= b for a, b in zip(errs, errs[1:]))

    def test_bits_validation(self):
        with pytest.raises(InterpolationError):
            quantize_weights(np.ones((1, 4)) * 0.25, 0)
        with pytest.raises(InterpolationError):
            quantize_weights(np.ones((1, 4)) * 0.25, 15)

    def test_negative_weights_supported(self):
        # bicubic rows contain negative lobes but still sum to 1
        w = np.array([[-0.0625, 0.5625, 0.5625, -0.0625]])
        q = quantize_weights(w, 8)
        assert q.sum() == 256
        assert (q < 0).any()


class TestFixedPointLUT:
    def test_matches_float_lut_at_high_precision(self, small_field, random_image):
        float_out = RemapLUT(small_field).apply(random_image).astype(int)
        fp_out = FixedPointLUT(small_field, frac_bits=12).apply(random_image).astype(int)
        assert np.abs(float_out - fp_out).max() <= 1

    def test_error_monotone_in_bits(self, small_field, random_image):
        reference = RemapLUT(small_field).apply(random_image).astype(np.float64)
        errs = []
        for bits in (2, 4, 8):
            out = FixedPointLUT(small_field, frac_bits=bits).apply(random_image)
            errs.append(float(np.abs(out.astype(np.float64) - reference).mean()))
        assert errs[0] >= errs[1] >= errs[2]

    def test_rejects_float_frames(self, small_field):
        fp = FixedPointLUT(small_field)
        with pytest.raises(MappingError):
            fp.apply(np.zeros((64, 64), dtype=np.float32))

    def test_rejects_wrong_geometry(self, small_field):
        fp = FixedPointLUT(small_field)
        with pytest.raises(MappingError):
            fp.apply(np.zeros((32, 32), dtype=np.uint8))

    def test_nearest_is_exact(self, small_field, random_image):
        # nearest has a single weight of exactly 1.0: quantization is lossless
        fp = FixedPointLUT(small_field, method="nearest", frac_bits=4)
        flt = RemapLUT(small_field, method="nearest")
        np.testing.assert_array_equal(fp.apply(random_image), flt.apply(random_image))

    def test_index_dtype_capacity_checked(self, small_field):
        with pytest.raises(MappingError):
            FixedPointLUT(small_field, index_dtype=np.int8)

    def test_masked_pixels_filled(self, tilted_field, random_image):
        fp = FixedPointLUT(tilted_field, fill=9)
        out = fp.apply(random_image)
        invalid = ~tilted_field.valid_mask()
        np.testing.assert_array_equal(out[invalid], 9)

    def test_packed_entry_bytes_layouts(self, small_field):
        near = FixedPointLUT(small_field, method="nearest", frac_bits=8)
        bil = FixedPointLUT(small_field, method="bilinear", frac_bits=8)
        assert near.packed_entry_bytes() == 4.0
        assert bil.packed_entry_bytes() == 6.0
        assert bil.entry_bytes() > bil.packed_entry_bytes()

    def test_uint16_frames(self, small_field, rng):
        frame = rng.integers(0, 65535, size=(64, 64), dtype=np.uint16)
        out = FixedPointLUT(small_field, frac_bits=10).apply(frame)
        assert out.dtype == np.uint16

    def test_multichannel(self, small_field, rgb_image):
        out = FixedPointLUT(small_field).apply(rgb_image)
        assert out.shape == (64, 64, 3)

    def test_apply_into_writes_buffer(self, small_field, random_image):
        fp = FixedPointLUT(small_field, frac_bits=12)
        out = np.empty(fp.out_shape, dtype=random_image.dtype)
        returned = fp.apply_into(random_image, out)
        assert returned is out
        np.testing.assert_array_equal(out, fp.apply(random_image))

    def test_apply_into_requires_buffer(self, small_field, random_image):
        with pytest.raises(MappingError):
            FixedPointLUT(small_field).apply_into(random_image, None)

    def test_apply_into_validates_buffer(self, small_field, random_image):
        fp = FixedPointLUT(small_field)
        wrong = np.empty((32, 32), dtype=random_image.dtype)
        with pytest.raises(MappingError):
            fp.apply_into(random_image, wrong)

    def test_apply_rows_into_matches_full(self, small_field, random_image):
        fp = FixedPointLUT(small_field, frac_bits=10)
        full = fp.apply(random_image)
        out = np.zeros_like(full)
        h = fp.out_shape[0]
        for row0, row1 in ((0, 20), (20, 41), (41, h)):
            fp.apply_rows_into(random_image, row0, row1, out[row0:row1])
        np.testing.assert_array_equal(out, full)

    def test_apply_rows_into_masked_bands(self, tilted_field, random_image):
        fp = FixedPointLUT(tilted_field, fill=7)
        full = fp.apply(random_image)
        h = fp.out_shape[0]
        out = np.zeros_like(full)
        fp.apply_rows_into(random_image, 0, h // 2, out[: h // 2])
        fp.apply_rows_into(random_image, h // 2, h, out[h // 2:])
        np.testing.assert_array_equal(out, full)

    def test_apply_rows_into_rejects_bad_range(self, small_field, random_image):
        fp = FixedPointLUT(small_field)
        out = np.empty((10, 64), dtype=random_image.dtype)
        with pytest.raises(MappingError):
            fp.apply_rows_into(random_image, 30, 20, out)


class TestQualityLadder:
    """The acceptance-criteria quality floors of the shipping Q tiers."""

    def _oracle(self, field, image):
        base = RemapLUT(field)
        out = base.apply(image.astype(np.float32))
        return np.clip(np.rint(out), 0, 255).astype(np.uint8), base

    def test_psnr_floor_across_bits(self, small_field, random_image):
        """Every shipping precision (Q6..Q12) clears 40 dB vs the
        float oracle — the gate check_regression enforces at Q12."""
        oracle, base = self._oracle(small_field, random_image)
        for bits in range(6, 13):
            out = base.with_tier("fixed", frac_bits=bits).apply(random_image)
            assert psnr(oracle, out) >= 40.0, f"Q{bits} below 40 dB"

    def test_psnr_monotone_in_bits(self, small_field, random_image):
        oracle, base = self._oracle(small_field, random_image)
        values = [psnr(oracle, base.with_tier("fixed", frac_bits=b).apply(random_image))
                  for b in range(6, 13)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_flat_frame_exact_through_fixed_tier(self, small_field):
        """Brightness preservation via the RemapLUT execution path (the
        FixedPointLUT property test covers the other entry point)."""
        frame = np.full((64, 64), 201, dtype=np.uint8)
        for bits in (4, 8, 12):
            out = RemapLUT(small_field).with_tier("fixed", frac_bits=bits).apply(frame)
            np.testing.assert_array_equal(out, 201)

    def test_lut_and_fixedpoint_bit_exact(self, tilted_field, random_image):
        """The two Q-format entry points execute identical arithmetic."""
        for bits in (6, 12):
            a = FixedPointLUT(tilted_field, frac_bits=bits, fill=3).apply(random_image)
            b = RemapLUT(tilted_field, fill=3).with_tier(
                "fixed", frac_bits=bits).apply(random_image)
            np.testing.assert_array_equal(a, b)


@given(bits=st.integers(2, 12))
@settings(max_examples=11, deadline=None)
def test_property_brightness_preserved_on_flat_frames(bits):
    """Quantized interpolation of a constant frame is exactly constant.

    This is the invariant the weight re-balancing buys: without it,
    flat regions would shift brightness by the rounding residue.
    """
    from repro.core.mapping import identity_map

    rng = np.random.default_rng(bits)
    # a slightly perturbed identity map so fractions are non-trivial
    f = identity_map(16, 16)
    f.map_x += rng.uniform(0.05, 0.95, size=f.map_x.shape)
    f.map_y += rng.uniform(0.05, 0.95, size=f.map_y.shape)
    f.map_x = np.clip(f.map_x, 0, 14.9)
    f.map_y = np.clip(f.map_y, 0, 14.9)
    field = type(f)(f.map_x, f.map_y, 16, 16)
    frame = np.full((16, 16), 173, dtype=np.uint8)
    out = FixedPointLUT(field, frac_bits=bits).apply(frame)
    np.testing.assert_array_equal(out, 173)
