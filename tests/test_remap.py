"""Remap engine tests: on-the-fly vs LUT vs tile application."""

import numpy as np
import pytest

from repro.core import interpolation as interp
from repro.core.mapping import RemapField, identity_map
from repro.core.remap import RemapLUT, remap, remap_profiled
from repro.errors import InterpolationError, MappingError


class TestRemapOnTheFly:
    def test_identity_map_is_noop(self, random_image):
        f = identity_map(64, 64)
        out = remap(random_image, f, method="bilinear")
        np.testing.assert_array_equal(out, random_image)

    def test_rejects_wrong_source_size(self, random_image):
        f = identity_map(32, 32)
        with pytest.raises(MappingError):
            remap(random_image, f)

    @pytest.mark.parametrize("method", interp.METHODS)
    def test_matches_direct_sampling(self, method, small_field, random_image):
        via_remap = remap(random_image, small_field, method=method)
        direct = interp.sample(random_image, small_field.map_x, small_field.map_y,
                               method=method)
        np.testing.assert_array_equal(via_remap, direct)


class TestRemapLUT:
    @pytest.mark.parametrize("method", interp.METHODS)
    def test_lut_matches_otf(self, method, small_field, random_image):
        lut = RemapLUT(small_field, method=method)
        out_lut = lut.apply(random_image)
        out_otf = remap(random_image, small_field, method=method)
        np.testing.assert_allclose(out_lut.astype(int), out_otf.astype(int), atol=1)

    def test_taps_per_method(self, small_field):
        assert RemapLUT(small_field, method="nearest").taps == 1
        assert RemapLUT(small_field, method="bilinear").taps == 4
        assert RemapLUT(small_field, method="bicubic").taps == 16

    def test_weights_sum_to_one_where_valid(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        sums = lut.weights.sum(axis=1)
        valid = lut.mask
        np.testing.assert_allclose(sums[valid], 1.0, atol=1e-6)

    def test_masked_pixels_get_fill(self, tilted_field, random_image):
        lut = RemapLUT(tilted_field, method="bilinear", fill=123.0)
        out = lut.apply(random_image)
        invalid = ~tilted_field.valid_mask()
        assert invalid.any()
        np.testing.assert_array_equal(out[invalid], 123)

    def test_indices_in_bounds(self, small_field):
        for method in interp.METHODS:
            lut = RemapLUT(small_field, method=method)
            assert lut.indices.min() >= 0
            assert lut.indices.max() < 64 * 64

    def test_nbytes_and_entry_bytes_consistent(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        pixels = 64 * 64
        assert lut.nbytes == pytest.approx(lut.entry_bytes() * pixels, rel=0.01)

    def test_apply_out_buffer_reused(self, small_field, random_image):
        lut = RemapLUT(small_field)
        buf = np.empty((64, 64), dtype=np.uint8)
        out = lut.apply(random_image, out=buf)
        assert out is buf
        np.testing.assert_array_equal(buf, lut.apply(random_image))

    def test_apply_rejects_wrong_frame(self, small_field):
        lut = RemapLUT(small_field)
        with pytest.raises(MappingError):
            lut.apply(np.zeros((10, 10), dtype=np.uint8))

    def test_rejects_unknown_method(self, small_field):
        with pytest.raises(InterpolationError):
            RemapLUT(small_field, method="spline")

    def test_rejects_unknown_border(self, small_field):
        with pytest.raises(InterpolationError):
            RemapLUT(small_field, border="mirror99")

    def test_multichannel(self, small_field, rgb_image):
        lut = RemapLUT(small_field)
        out = lut.apply(rgb_image)
        assert out.shape == (64, 64, 3)
        for c in range(3):
            np.testing.assert_array_equal(out[..., c], lut.apply(rgb_image[..., c]))


class TestApplyRows:
    def test_stitched_rows_equal_full_apply(self, small_field, random_image):
        lut = RemapLUT(small_field, method="bilinear")
        full = lut.apply(random_image)
        parts = [lut.apply_rows(random_image, r, min(r + 13, 64))
                 for r in range(0, 64, 13)]
        stitched = np.concatenate(parts, axis=0)
        np.testing.assert_array_equal(stitched, full)

    def test_bad_row_range_rejected(self, small_field, random_image):
        lut = RemapLUT(small_field)
        with pytest.raises(MappingError):
            lut.apply_rows(random_image, 10, 5)
        with pytest.raises(MappingError):
            lut.apply_rows(random_image, 0, 100)

    def test_rgb_rows(self, small_field, rgb_image):
        lut = RemapLUT(small_field)
        block = lut.apply_rows(rgb_image, 8, 16)
        np.testing.assert_array_equal(block, lut.apply(rgb_image)[8:16])


class TestRemapProfiled:
    def test_output_matches_lut(self, small_field, random_image):
        out, prof = remap_profiled(random_image, small_field)
        lut = RemapLUT(small_field)
        np.testing.assert_array_equal(out, lut.apply(random_image))

    def test_profile_has_positive_stages(self, small_field, random_image):
        _, prof = remap_profiled(random_image, small_field)
        d = prof.as_dict()
        for stage in ("lut_build", "gather", "interpolate", "store"):
            assert d[stage] >= 0.0
        assert prof.total == pytest.approx(sum(v for k, v in d.items() if k != "total"))

    def test_profile_fill_applied(self, tilted_field, random_image):
        out, _ = remap_profiled(random_image, tilted_field, fill=50.0)
        invalid = ~tilted_field.valid_mask()
        np.testing.assert_array_equal(out[invalid], 50)


class TestFloatFrames:
    def test_float32_frames_supported(self, small_field):
        frame = np.linspace(0, 1, 64 * 64, dtype=np.float32).reshape(64, 64)
        lut = RemapLUT(small_field)
        out = lut.apply(frame)
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_uint16_frames_supported(self, small_field, rng):
        frame = rng.integers(0, 65535, size=(64, 64), dtype=np.uint16)
        out = RemapLUT(small_field).apply(frame)
        assert out.dtype == np.uint16

    def test_float64_keeps_native_precision(self, rng):
        # On an identity map every output pixel is exactly one source
        # pixel with weight 1 — a float32 round-trip would corrupt the
        # low bits of arbitrary float64 data, native accumulation won't.
        f = identity_map(64, 64)
        frame = rng.random((64, 64), dtype=np.float64) * 1e9 + rng.random((64, 64))
        out = RemapLUT(f, method="bilinear").apply(frame)
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, frame)


class TestScalarOracle:
    """The fused compact-LUT kernel against the loop-based reference."""

    @pytest.mark.parametrize("method", interp.METHODS)
    @pytest.mark.parametrize("border", interp.BORDER_MODES)
    def test_fused_kernel_matches_scalar(self, method, border, small_field,
                                         random_image):
        lut = RemapLUT(small_field, method=method, border=border, fill=7.0)
        got = lut.apply(random_image)
        want = interp.sample_scalar(random_image, small_field.map_x,
                                    small_field.map_y, method=method,
                                    border=border, fill=7.0)
        np.testing.assert_allclose(got.astype(int), want.astype(int), atol=1)


class TestApplyInto:
    def test_matches_apply(self, small_field, random_image):
        lut = RemapLUT(small_field, method="bilinear")
        out = np.empty((64, 64), dtype=np.uint8)
        ret = lut.apply_into(random_image, out)
        assert ret is out
        np.testing.assert_array_equal(out, lut.apply(random_image))

    def test_rgb_into(self, small_field, rgb_image):
        lut = RemapLUT(small_field)
        out = np.empty((64, 64, 3), dtype=np.uint8)
        lut.apply_into(rgb_image, out)
        np.testing.assert_array_equal(out, lut.apply(rgb_image))

    def test_bad_out_rejected(self, small_field, random_image):
        lut = RemapLUT(small_field)
        with pytest.raises(MappingError):
            lut.apply_into(random_image, np.empty((32, 32), dtype=np.uint8))
        with pytest.raises(MappingError):
            lut.apply_into(random_image, np.empty((64, 64), dtype=np.float32))

    def test_rows_into_stitches(self, small_field, random_image):
        lut = RemapLUT(small_field, method="bicubic")
        full = lut.apply(random_image)
        out = np.empty((64, 64), dtype=np.uint8)
        for r in range(0, 64, 13):
            r1 = min(r + 13, 64)
            lut.apply_rows_into(random_image, r, r1, out[r:r1])
        np.testing.assert_array_equal(out, full)

    def test_repeated_apply_into_is_stable(self, small_field, random_image):
        # Scratch buffers are pooled; a second call must not see stale
        # accumulator state from the first.
        lut = RemapLUT(small_field, method="bilinear")
        out = np.empty((64, 64), dtype=np.uint8)
        first = lut.apply_into(random_image, out).copy()
        second = lut.apply_into(random_image, out)
        np.testing.assert_array_equal(first, second)


class TestCompactLayout:
    # deployed-size budget of the former float64 index + per-tap weight
    # layout, per method
    SEED_ENTRY_BYTES = {"nearest": 13.0, "bilinear": 49.0, "bicubic": 193.0}

    @pytest.mark.parametrize("method", interp.METHODS)
    def test_entry_bytes_dropped(self, method, small_field):
        lut = RemapLUT(small_field, method=method)
        assert lut.indices.dtype == np.int32
        assert lut.entry_bytes() <= 0.6 * self.SEED_ENTRY_BYTES[method]

    def test_entry_bytes_for_matches_instances(self, small_field):
        for method in interp.METHODS:
            lut = RemapLUT(small_field, method=method)
            assert lut.entry_bytes() == RemapLUT.entry_bytes_for(method)

    def test_weights_property_still_expands(self, small_field):
        lut = RemapLUT(small_field, method="bicubic")
        w = lut.weights
        assert w.shape == (64 * 64, 16)
        np.testing.assert_allclose(w.sum(axis=1)[lut.mask], 1.0, atol=1e-5)
