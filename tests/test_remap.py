"""Remap engine tests: on-the-fly vs LUT vs tile application."""

import numpy as np
import pytest

from repro.core import interpolation as interp
from repro.core.mapping import RemapField, identity_map
from repro.core.remap import RemapLUT, remap, remap_profiled
from repro.errors import InterpolationError, MappingError


class TestRemapOnTheFly:
    def test_identity_map_is_noop(self, random_image):
        f = identity_map(64, 64)
        out = remap(random_image, f, method="bilinear")
        np.testing.assert_array_equal(out, random_image)

    def test_rejects_wrong_source_size(self, random_image):
        f = identity_map(32, 32)
        with pytest.raises(MappingError):
            remap(random_image, f)

    @pytest.mark.parametrize("method", interp.METHODS)
    def test_matches_direct_sampling(self, method, small_field, random_image):
        via_remap = remap(random_image, small_field, method=method)
        direct = interp.sample(random_image, small_field.map_x, small_field.map_y,
                               method=method)
        np.testing.assert_array_equal(via_remap, direct)


class TestRemapLUT:
    @pytest.mark.parametrize("method", interp.METHODS)
    def test_lut_matches_otf(self, method, small_field, random_image):
        lut = RemapLUT(small_field, method=method)
        out_lut = lut.apply(random_image)
        out_otf = remap(random_image, small_field, method=method)
        np.testing.assert_allclose(out_lut.astype(int), out_otf.astype(int), atol=1)

    def test_taps_per_method(self, small_field):
        assert RemapLUT(small_field, method="nearest").taps == 1
        assert RemapLUT(small_field, method="bilinear").taps == 4
        assert RemapLUT(small_field, method="bicubic").taps == 16

    def test_weights_sum_to_one_where_valid(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        sums = lut.weights.sum(axis=1)
        valid = lut.mask
        np.testing.assert_allclose(sums[valid], 1.0, atol=1e-6)

    def test_masked_pixels_get_fill(self, tilted_field, random_image):
        lut = RemapLUT(tilted_field, method="bilinear", fill=123.0)
        out = lut.apply(random_image)
        invalid = ~tilted_field.valid_mask()
        assert invalid.any()
        np.testing.assert_array_equal(out[invalid], 123)

    def test_indices_in_bounds(self, small_field):
        for method in interp.METHODS:
            lut = RemapLUT(small_field, method=method)
            assert lut.indices.min() >= 0
            assert lut.indices.max() < 64 * 64

    def test_nbytes_and_entry_bytes_consistent(self, small_field):
        lut = RemapLUT(small_field, method="bilinear")
        pixels = 64 * 64
        assert lut.nbytes == pytest.approx(lut.entry_bytes() * pixels, rel=0.01)

    def test_apply_out_buffer_reused(self, small_field, random_image):
        lut = RemapLUT(small_field)
        buf = np.empty((64, 64), dtype=np.uint8)
        out = lut.apply(random_image, out=buf)
        assert out is buf
        np.testing.assert_array_equal(buf, lut.apply(random_image))

    def test_apply_rejects_wrong_frame(self, small_field):
        lut = RemapLUT(small_field)
        with pytest.raises(MappingError):
            lut.apply(np.zeros((10, 10), dtype=np.uint8))

    def test_rejects_unknown_method(self, small_field):
        with pytest.raises(InterpolationError):
            RemapLUT(small_field, method="spline")

    def test_rejects_unknown_border(self, small_field):
        with pytest.raises(InterpolationError):
            RemapLUT(small_field, border="mirror99")

    def test_multichannel(self, small_field, rgb_image):
        lut = RemapLUT(small_field)
        out = lut.apply(rgb_image)
        assert out.shape == (64, 64, 3)
        for c in range(3):
            np.testing.assert_array_equal(out[..., c], lut.apply(rgb_image[..., c]))


class TestApplyRows:
    def test_stitched_rows_equal_full_apply(self, small_field, random_image):
        lut = RemapLUT(small_field, method="bilinear")
        full = lut.apply(random_image)
        parts = [lut.apply_rows(random_image, r, min(r + 13, 64))
                 for r in range(0, 64, 13)]
        stitched = np.concatenate(parts, axis=0)
        np.testing.assert_array_equal(stitched, full)

    def test_bad_row_range_rejected(self, small_field, random_image):
        lut = RemapLUT(small_field)
        with pytest.raises(MappingError):
            lut.apply_rows(random_image, 10, 5)
        with pytest.raises(MappingError):
            lut.apply_rows(random_image, 0, 100)

    def test_rgb_rows(self, small_field, rgb_image):
        lut = RemapLUT(small_field)
        block = lut.apply_rows(rgb_image, 8, 16)
        np.testing.assert_array_equal(block, lut.apply(rgb_image)[8:16])


class TestRemapProfiled:
    def test_output_matches_lut(self, small_field, random_image):
        out, prof = remap_profiled(random_image, small_field)
        lut = RemapLUT(small_field)
        np.testing.assert_array_equal(out, lut.apply(random_image))

    def test_profile_has_positive_stages(self, small_field, random_image):
        _, prof = remap_profiled(random_image, small_field)
        d = prof.as_dict()
        for stage in ("lut_build", "gather", "interpolate", "store"):
            assert d[stage] >= 0.0
        assert prof.total == pytest.approx(sum(v for k, v in d.items() if k != "total"))

    def test_profile_fill_applied(self, tilted_field, random_image):
        out, _ = remap_profiled(random_image, tilted_field, fill=50.0)
        invalid = ~tilted_field.valid_mask()
        np.testing.assert_array_equal(out[invalid], 50)


class TestFloatFrames:
    def test_float32_frames_supported(self, small_field):
        frame = np.linspace(0, 1, 64 * 64, dtype=np.float32).reshape(64, 64)
        lut = RemapLUT(small_field)
        out = lut.apply(frame)
        assert out.dtype == np.float32
        assert np.isfinite(out).all()

    def test_uint16_frames_supported(self, small_field, rng):
        frame = rng.integers(0, 65535, size=(64, 64), dtype=np.uint16)
        out = RemapLUT(small_field).apply(frame)
        assert out.dtype == np.uint16
