"""NV12: the interleaved-chroma decoder format as a first-class pixfmt.

Covers the frame container (packed-row zero-copy views, I420
round-trips), the single strided 2-channel chroma apply and its
bit-equality with the per-plane I420 path, per-plane band delivery
through the ring engine and a broker session, and the fused
correct+downscale delivery path with its ``fused=`` / ``plane=``
telemetry labels.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.core.compose import compose_fields, downscale_field
from repro.core.mapping import chroma_half_field
from repro.core.remap import RemapLUT
from repro.errors import ImageFormatError
from repro.video.stream import corrected_stream
from repro.video.yuv import (NV12_PLANE_NAMES, NV12Frame, YUV420Frame,
                             YUVCorrector, plane_names_for, to_nv12_stream)


def _frames(rng, n, h=64, w=64):
    for _ in range(n):
        yield NV12Frame(
            rng.integers(0, 256, (h, w), dtype=np.uint8),
            rng.integers(0, 256, (h // 2, w // 2, 2), dtype=np.uint8))


# ----------------------------------------------------------------------
# the frame container
# ----------------------------------------------------------------------
class TestNV12Frame:
    def test_plane_shapes(self):
        assert NV12Frame.plane_shapes(16, 12) == ((16, 12), (8, 6, 2))
        assert plane_names_for("nv12") == NV12_PLANE_NAMES == ("y", "uv")

    def test_odd_size_rejected(self):
        with pytest.raises(ImageFormatError):
            NV12Frame.plane_shapes(15, 16)
        with pytest.raises(ImageFormatError):
            NV12Frame(np.zeros((15, 16), dtype=np.uint8),
                      np.zeros((7, 8, 2), dtype=np.uint8))

    def test_mismatched_uv_rejected(self):
        with pytest.raises(ImageFormatError):
            NV12Frame(np.zeros((16, 16), dtype=np.uint8),
                      np.zeros((8, 8), dtype=np.uint8))

    def test_packed_roundtrip_zero_copy(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 256, (16, 16), dtype=np.uint8)
        packed = rng.integers(0, 256, (8, 16), dtype=np.uint8)
        f = NV12Frame.from_packed(y, packed)
        # the 2-channel view is the same memory as the decoder rows
        assert np.shares_memory(f.uv, packed)
        assert np.array_equal(f.packed_uv, packed)
        # interleaving order: U0 V0 U1 V1 ...
        assert f.uv[0, 0, 0] == packed[0, 0]
        assert f.uv[0, 0, 1] == packed[0, 1]

    def test_from_packed_rejects_odd_width(self):
        with pytest.raises(ImageFormatError):
            NV12Frame.from_packed(np.zeros((16, 16), dtype=np.uint8),
                                  np.zeros((8, 15), dtype=np.uint8))

    def test_yuv420_roundtrip(self):
        rng = np.random.default_rng(1)
        i420 = YUV420Frame(
            rng.integers(0, 256, (16, 16), dtype=np.uint8),
            rng.integers(0, 256, (8, 8), dtype=np.uint8),
            rng.integers(0, 256, (8, 8), dtype=np.uint8))
        back = NV12Frame.from_yuv420(i420).to_yuv420()
        assert np.array_equal(back.y, i420.y)
        assert np.array_equal(back.u, i420.u)
        assert np.array_equal(back.v, i420.v)


# ----------------------------------------------------------------------
# the single strided chroma apply
# ----------------------------------------------------------------------
class TestCorrectNV12:
    def test_bit_identical_to_i420_after_deinterleave(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        rng = np.random.default_rng(2)
        (f,) = list(_frames(rng, 1))
        got = corr.correct_nv12(f, copy=True).to_yuv420()
        want = corr.correct(f.to_yuv420(), copy=True)
        assert np.array_equal(got.y, want.y)
        assert np.array_equal(got.u, want.u)
        assert np.array_equal(got.v, want.v)

    def test_one_apply_covers_both_channels(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        rng = np.random.default_rng(3)
        (f,) = list(_frames(rng, 1))
        out = corr.chroma_lut.apply(f.uv)
        assert out.shape[-1] == 2
        assert np.array_equal(out[..., 0],
                              corr.chroma_lut.apply(f.uv[..., 0].copy()))
        assert np.array_equal(out[..., 1],
                              corr.chroma_lut.apply(f.uv[..., 1].copy()))

    def test_nv12_plane_luts_order(self, small_field):
        corr = YUVCorrector.from_field(small_field)
        luma, chroma = corr.nv12_plane_luts
        assert luma is corr.luma_lut
        assert chroma is corr.chroma_lut

    def test_to_nv12_stream_adapts_gray(self):
        gray = [np.full((16, 16), k, dtype=np.uint8) for k in range(3)]
        out = list(to_nv12_stream(gray))
        assert len(out) == 3
        for k, f in enumerate(out):
            assert np.array_equal(f.y, gray[k])
            assert f.uv.shape == (8, 8, 2)


# ----------------------------------------------------------------------
# per-plane band delivery: ring and broker
# ----------------------------------------------------------------------
class TestNV12Delivery:
    def test_ring_matches_sync_bit_exact(self, small_field):
        rng = np.random.default_rng(4)
        frames = list(_frames(rng, 5))
        corr = YUVCorrector.from_field(small_field)
        want = [corr.correct_nv12(f, copy=True) for f in frames]
        got = list(corrected_stream(iter(frames), small_field,
                                    pixfmt="nv12", engine="ring",
                                    workers=2, depth=2, copy=True))
        assert len(got) == len(want)
        for g, e in zip(got, want):
            assert isinstance(g, NV12Frame)
            assert np.array_equal(g.y, e.y)
            assert np.array_equal(g.uv, e.uv)

    def test_broker_session_in_order(self, small_field):
        from repro.serve.broker import StreamBroker

        rng = np.random.default_rng(5)
        frames = list(_frames(rng, 5))
        corr = YUVCorrector.from_field(small_field)
        want = [corr.correct_nv12(f, copy=True) for f in frames]
        with StreamBroker(workers=2, slot_budget=4) as broker:
            got = list(broker.open(iter(frames), small_field,
                                   name="nv12-test", pixfmt="nv12",
                                   depth=2))
        assert len(got) == len(want)
        for g, e in zip(got, want):
            assert isinstance(g, NV12Frame)
            assert np.array_equal(g.y, e.y)
            assert np.array_equal(g.uv, e.uv)

    def test_plane_counters_use_uv_label(self, small_field):
        from repro.obs.export import labeled
        from repro.obs.telemetry import Telemetry, scoped

        rng = np.random.default_rng(6)
        frames = list(_frames(rng, 3))
        tel = Telemetry()
        with scoped(tel):
            list(corrected_stream(iter(frames), small_field,
                                  pixfmt="nv12", copy=True))
        counters = tel.snapshot()["counters"]
        for plane in NV12_PLANE_NAMES:
            assert counters[labeled("stream.frames", plane=plane)] == 3
        assert labeled("stream.frames", plane="u") not in counters


# ----------------------------------------------------------------------
# fused correct+downscale delivery
# ----------------------------------------------------------------------
class TestFusedDelivery:
    def _oracle_luts(self, field, ow, oh):
        fh, fw = field.shape
        outer = downscale_field(ow, oh, fw, fh, prefilter=False)
        luma = RemapLUT(compose_fields(outer, field))
        outer_c = downscale_field(ow // 2, oh // 2, fw // 2, fh // 2,
                                  prefilter=False)
        chroma = RemapLUT(compose_fields(outer_c, chroma_half_field(field)),
                          fill=128.0)
        return luma, chroma

    def test_sync_fused_matches_composed_oracle(self, small_field):
        rng = np.random.default_rng(7)
        frames = list(_frames(rng, 3))
        luma, chroma = self._oracle_luts(small_field, 32, 32)
        got = list(corrected_stream(iter(frames), small_field,
                                    pixfmt="nv12", out_size=(32, 32),
                                    copy=True))
        for g, f in zip(got, frames):
            assert g.y.shape == (32, 32)
            assert np.array_equal(g.y, luma.apply(f.y))
            assert np.array_equal(g.uv, chroma.apply(f.uv))

    def test_ring_fused_matches_sync(self, small_field):
        rng = np.random.default_rng(8)
        frames = list(_frames(rng, 4))
        sync = list(corrected_stream(iter(frames), small_field,
                                     pixfmt="nv12", out_size=(32, 32),
                                     copy=True))
        ring = list(corrected_stream(iter(frames), small_field,
                                     pixfmt="nv12", out_size=(32, 32),
                                     engine="ring", workers=2, depth=2,
                                     copy=True))
        for a, b in zip(sync, ring):
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.uv, b.uv)

    def test_fused_label_emitted(self, small_field):
        from repro.obs.export import labeled
        from repro.obs.telemetry import Telemetry, scoped

        rng = np.random.default_rng(9)
        frames = list(_frames(rng, 3))
        tel = Telemetry()
        with scoped(tel):
            list(corrected_stream(iter(frames), small_field,
                                  pixfmt="nv12", out_size=(32, 32),
                                  copy=True))
        counters = tel.snapshot()["counters"]
        assert counters[labeled("stream.frames", fused="true")] == 3

    def test_broker_fused_session(self, small_field):
        from repro.serve.broker import StreamBroker

        rng = np.random.default_rng(10)
        frames = list(_frames(rng, 4))
        luma, chroma = self._oracle_luts(small_field, 32, 32)
        with StreamBroker(workers=2, slot_budget=4) as broker:
            got = list(broker.open(iter(frames), small_field,
                                   name="nv12-fused", pixfmt="nv12",
                                   out_size=(32, 32), depth=2))
        assert len(got) == len(frames)
        for g, f in zip(got, frames):
            assert np.array_equal(g.y, luma.apply(f.y))
            assert np.array_equal(g.uv, chroma.apply(f.uv))

    def test_odd_out_size_rejected(self, small_field):
        with pytest.raises(ImageFormatError):
            list(corrected_stream(iter(()), small_field, pixfmt="nv12",
                                  out_size=(33, 32)))

    def test_cli_pixfmt_nv12_fused(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stream", "--pixfmt", "nv12",
             "--out-size", "32x32", "--frames", "3", "--width", "64",
             "--height", "64"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0, proc.stderr
        assert "pixfmt=nv12" in proc.stdout
        assert "out=32x32" in proc.stdout
        assert "fused" in proc.stdout
