"""Tests: the live observability plane.

MetricsServer endpoints, the flight recorder, frame lineage through
the ring engine, the per-frame deadline SLO and the stall watchdog.
"""

import json
import os
import signal
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.remap import RemapLUT
from repro.errors import ScheduleError, StreamError, TelemetryError
from repro.obs.export import parse_prometheus_text, slo_summary
from repro.obs.flightrec import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from repro.obs.live import MetricsServer, health_summary
from repro.obs.telemetry import Telemetry, scoped
from repro.parallel.ring import RingEngine

pytestmark = pytest.mark.tier1


@pytest.fixture(scope="module")
def lut(small_field):
    return RemapLUT(small_field, method="bilinear")


def _frames(rng, n, shape=(64, 64)):
    return [rng.integers(0, 255, shape, dtype=np.uint8) for _ in range(n)]


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_bounded_ring_keeps_last_n(self):
        rec = FlightRecorder(capacity=3)
        for k in range(10):
            rec.record("tick", k=k)
        events = rec.events()
        assert len(events) == 3
        assert [e["k"] for e in events] == [7, 8, 9]
        assert rec.recorded == 10
        assert rec.dropped == 7

    def test_record_span_and_clear(self):
        rec = FlightRecorder(capacity=8)
        rec.record_span({"name": "ring.band", "ts": 1.0, "dur": 0.5,
                         "args": {"frame_id": 0}})
        assert rec.events()[0]["kind"] == "span"
        assert rec.events()[0]["name"] == "ring.band"
        rec.clear()
        assert rec.events() == []

    def test_dump_writes_timestamped_json(self, tmp_path):
        rec = FlightRecorder(capacity=4, directory=tmp_path)
        rec.record("decode", frame_id=0, slot=1)
        path = rec.dump("worker-crash", error="boom")
        assert os.path.exists(path)
        assert os.path.basename(path).startswith("repro-flightrec-")
        payload = json.loads(open(path).read())
        assert payload["reason"] == "worker-crash"
        assert payload["error"] == "boom"
        assert payload["pid"] == os.getpid()
        assert payload["events"][-1]["kind"] == "decode"
        assert payload["capacity"] == 4

    def test_default_capacity_and_validation(self):
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_CAPACITY
        with pytest.raises(TelemetryError):
            FlightRecorder(capacity=0)

    def test_dump_to_unwritable_dir_never_raises(self):
        rec = FlightRecorder(capacity=2, directory="/nonexistent/nowhere")
        rec.record("tick")
        assert rec.dump("stall") == ""


# ----------------------------------------------------------------------
# health summary + metrics server
# ----------------------------------------------------------------------
class TestHealthSummary:
    def test_ok_and_stalled(self):
        snap = {"counters": {"stream.frames": 7, "stream.deadline_miss": 2},
                "gauges": {"ring.depth": 2.0, "ring.in_flight": 1.0},
                "meta": {"pid": 42}}
        body = health_summary(snap, uptime_s=1.5)
        assert body["status"] == "ok"
        assert body["pid"] == 42
        assert body["frames"] == 7
        assert body["deadline_misses"] == 2
        assert body["ring"] == {"depth": 2.0, "in_flight": 1.0}
        assert body["uptime_s"] == 1.5
        snap["counters"]["stream.stalls"] = 1
        assert health_summary(snap)["status"] == "stalled"

    def test_falls_back_to_ring_frames(self):
        body = health_summary({"counters": {"ring.frames": 3}})
        assert body["frames"] == 3


class TestMetricsServer:
    def test_endpoints_serve_pinned_registry(self):
        tel = Telemetry()
        tel.counter("stream.frames").inc(5)
        tel.histogram("frame.e2e_latency_seconds").observe(0.004)
        with MetricsServer(telemetry=tel, port=0) as server:
            assert server.running
            assert server.port > 0

            status, ctype, body = _get(server.url + "/metrics")
            assert status == 200
            assert ctype.startswith("text/plain")
            series = parse_prometheus_text(body.decode())
            assert series["repro_stream_frames"] == [({}, 5.0)]
            assert "repro_frame_e2e_latency_seconds_count" in series

            status, ctype, body = _get(server.url + "/health")
            assert status == 200
            assert ctype == "application/json"
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["frames"] == 5
            assert health["uptime_s"] >= 0

            status, _, body = _get(server.url + "/snapshot")
            snap = json.loads(body)
            assert snap["counters"]["stream.frames"] == 5
        assert not server.running

    def test_unknown_path_is_404(self):
        with MetricsServer(telemetry=Telemetry(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(server.url + "/nope")
            assert err.value.code == 404

    def test_start_close_idempotent_and_validation(self):
        server = MetricsServer(telemetry=Telemetry(), port=0)
        server.start()
        server.start()
        server.close()
        server.close()
        with pytest.raises(TelemetryError):
            MetricsServer(port=70000)

    def test_unpinned_server_tracks_active_registry(self):
        """Without a pinned registry the server resolves get_telemetry()
        per request — a NullTelemetry just renders empty."""
        with MetricsServer(port=0) as server:
            _, _, body = _get(server.url + "/metrics")
            assert parse_prometheus_text(body.decode()) == {}


# ----------------------------------------------------------------------
# frame lineage + SLO through the ring engine
# ----------------------------------------------------------------------
class TestRingLineage:
    def test_frame_id_threads_through_every_span(self, lut, rng):
        frames = _frames(rng, 4)
        tel = Telemetry()
        with scoped(tel):
            with RingEngine(lut, (64, 64), workers=1, depth=2) as engine:
                list(engine.stream(frames, copy=True))
        by_name = {}
        for s in tel.spans:
            by_name.setdefault(s["name"], []).append(s)
        for name in ("ring.decode", "ring.band", "ring.deliver",
                     "frame.lifecycle"):
            assert name in by_name, f"missing {name} spans"
            for s in by_name[name]:
                assert "frame_id" in (s["args"] or {}), f"{name} lacks frame_id"
        # one lifecycle span per frame, on its own track, spanning
        # decode start -> delivery
        life = sorted(by_name["frame.lifecycle"],
                      key=lambda s: s["args"]["frame_id"])
        assert [s["args"]["frame_id"] for s in life] == [0, 1, 2, 3]
        assert {s["tid"] for s in life} == {"ring-frames"}
        decode0 = next(s for s in by_name["ring.decode"]
                       if s["args"]["frame_id"] == 0)
        assert life[0]["ts"] == pytest.approx(decode0["ts"], abs=1e-6)
        assert life[0]["dur"] >= decode0["dur"] * 0.5

    def test_e2e_latency_histogram(self, lut, rng):
        frames = _frames(rng, 5)
        tel = Telemetry()
        with scoped(tel):
            with RingEngine(lut, (64, 64), workers=2, depth=2) as engine:
                list(engine.stream(frames, copy=True))
        snap = tel.snapshot()
        h = snap["histograms"]["frame.e2e_latency_seconds"]
        assert h["count"] == 5
        assert h["sum"] > 0
        assert slo_summary(snap)["frames"] == 5
        assert "stream.deadline_miss" not in snap["counters"]  # no SLO armed

    def test_deadline_misses_counted(self, lut, rng):
        frames = _frames(rng, 4)
        tel = Telemetry()
        with scoped(tel):
            with RingEngine(lut, (64, 64), workers=1, depth=2,
                            deadline_s=1e-9) as engine:
                list(engine.stream(frames, copy=True))
        snap = tel.snapshot()
        assert snap["counters"]["stream.deadline_miss"] == 4
        slo = slo_summary(snap)
        assert slo["deadline_misses"] == 4
        assert slo["miss_rate"] == 1.0

    def test_deadline_validation(self, lut):
        with pytest.raises(ScheduleError):
            RingEngine(lut, (64, 64), deadline_s=0)
        with pytest.raises(ScheduleError):
            RingEngine(lut, (64, 64), stall_timeout_s=-1)


# ----------------------------------------------------------------------
# crash flight recorder + stall watchdog
# ----------------------------------------------------------------------
class TestCrashAndStall:
    def test_worker_crash_dumps_flight_recorder(self, lut, rng, tmp_path):
        """Kill a worker after frame 0 delivers: the StreamError carries
        a dump whose trailing events include the crashed stream's
        decode/band events and the band spans workers shipped back."""
        tel = Telemetry()
        with scoped(tel):
            engine = RingEngine(lut, (64, 64), workers=2, depth=2,
                                flight_dir=tmp_path)

            def source():
                k = 0
                while True:  # endless: only the crash ends this stream
                    yield np.full((64, 64), k % 251, dtype=np.uint8)
                    k += 1

            with pytest.raises(StreamError) as err:
                stream = engine.stream(source())
                # frame 0 delivered in full: its band completions and
                # the workers' shipped-back spans are on record
                next(stream)
                engine._procs[0].terminate()
                for _ in stream:
                    pass
        dump = err.value.flight_dump
        assert dump is not None
        assert str(tmp_path) in dump
        assert dump in str(err.value)
        payload = json.loads(open(dump).read())
        assert payload["reason"] == "worker-crash"
        kinds = [e["kind"] for e in payload["events"]]
        assert "decode" in kinds
        assert "band_done" in kinds
        assert "deliver" in kinds
        assert kinds[-1] == "worker_crash"
        band_spans = [e for e in payload["events"]
                      if e["kind"] == "span" and e["name"] == "ring.band"]
        assert band_spans, "dump lacks the workers' ring.band spans"
        assert all("frame_id" in e["args"] for e in band_spans)

    def test_stall_watchdog_fires_and_recovers(self, lut, rng, tmp_path):
        """SIGSTOP the only worker mid-stream: the watchdog must count a
        stall and dump the recorder, then the stream completes normally
        once the worker is resumed."""
        frames = _frames(rng, 3)
        tel = Telemetry()
        with scoped(tel):
            with RingEngine(lut, (64, 64), workers=1, depth=2,
                            stall_timeout_s=0.3,
                            flight_dir=tmp_path) as engine:
                stream = engine.stream(frames, copy=True)
                first = next(stream)
                pid = engine._procs[0].pid
                os.kill(pid, signal.SIGSTOP)
                resume = threading.Timer(1.2, os.kill, (pid, signal.SIGCONT))
                resume.start()
                try:
                    rest = list(stream)
                finally:
                    resume.cancel()
                    os.kill(pid, signal.SIGCONT)  # idempotent safety
        assert first.shape == lut.out_shape
        assert len(rest) == 2
        snap = tel.snapshot()
        assert snap["counters"]["stream.stalls"] >= 1
        assert slo_summary(snap)["stalls"] >= 1
        dumps = list(tmp_path.glob("repro-flightrec-*.json"))
        assert dumps, "watchdog fired without writing a dump"
        payload = json.loads(dumps[0].read_text())
        assert payload["reason"] == "stall"
        assert payload["events"][-1]["kind"] == "stall"

    def test_no_stall_counted_on_healthy_stream(self, lut, rng, tmp_path):
        frames = _frames(rng, 4)
        tel = Telemetry()
        with scoped(tel):
            with RingEngine(lut, (64, 64), workers=2, depth=2,
                            stall_timeout_s=30.0,
                            flight_dir=tmp_path) as engine:
                list(engine.stream(frames, copy=True))
        assert "stream.stalls" not in tel.snapshot()["counters"]
        assert not list(tmp_path.glob("repro-flightrec-*.json"))


# ----------------------------------------------------------------------
# corrected_stream(serve_metrics=...)
# ----------------------------------------------------------------------
class TestServeMetricsWiring:
    def test_stream_serves_while_running(self, small_field, rng):
        from repro.video.stream import corrected_stream

        frames = _frames(rng, 6)
        tel = Telemetry()
        server = MetricsServer(telemetry=tel, port=0)
        mid_health = {}
        with scoped(tel):
            stream = corrected_stream(frames, small_field, copy=True,
                                      engine="ring", workers=1, depth=2,
                                      serve_metrics=server)
            got = [next(stream)]
            # scrape mid-stream: the surface is live while frames flow
            _, _, body = _get(server.url + "/health")
            mid_health = json.loads(body)
            got += list(stream)
        assert len(got) == 6
        assert mid_health["status"] == "ok"
        assert mid_health["frames"] >= 1
        # caller-owned server: still running after the stream ends
        assert server.running
        server.close()

    def test_int_port_owns_server_lifetime(self, small_field, rng):
        from repro.video.stream import corrected_stream

        frames = _frames(rng, 2)
        tel = Telemetry()
        with scoped(tel):
            got = list(corrected_stream(frames, small_field, copy=True,
                                        serve_metrics=0))
        assert len(got) == 2  # server came and went with the stream


# ----------------------------------------------------------------------
# bind failures + owned-server lifecycle
# ----------------------------------------------------------------------
def _metrics_threads():
    return [t for t in threading.enumerate()
            if t.name == "repro-metrics-server"]


class TestBindFailure:
    def test_bound_port_raises_typed_error(self):
        from repro.errors import MetricsBindError

        with MetricsServer(telemetry=Telemetry(), port=0) as first:
            second = MetricsServer(telemetry=Telemetry(), port=first.port)
            with pytest.raises(MetricsBindError, match=str(first.port)):
                second.start()
            assert not second.running
            second.close()  # failed start leaves nothing to clean up
        # MetricsBindError is a TelemetryError: old handlers still catch
        assert issubclass(MetricsBindError, TelemetryError)

    def test_failed_start_can_retry(self):
        first = MetricsServer(telemetry=Telemetry(), port=0).start()
        second = MetricsServer(telemetry=Telemetry(), port=first.port)
        from repro.errors import MetricsBindError
        with pytest.raises(MetricsBindError):
            second.start()
        first.close()
        second.start()  # port now free: same object recovers
        assert second.running
        second.close()


class TestOwnedServerLifecycle:
    def test_stream_error_still_stops_owned_server(self, small_field, rng):
        """corrected_stream(serve_metrics=PORT) owns its server: when
        the source raises mid-run, the daemon thread must be gone."""
        from repro.video.stream import corrected_stream

        assert not _metrics_threads()
        frames_ok = _frames(rng, 2)

        def exploding():
            yield frames_ok[0]
            raise RuntimeError("decoder died")

        gen = corrected_stream(exploding(), small_field, copy=True,
                               serve_metrics=0)
        next(gen)
        assert len(_metrics_threads()) == 1  # serving mid-stream
        with pytest.raises(RuntimeError, match="decoder died"):
            next(gen)
        for t in _metrics_threads():
            t.join(timeout=5.0)
        assert not _metrics_threads()

    def test_caller_owned_server_survives_stream(self, small_field, rng):
        from repro.video.stream import corrected_stream

        with MetricsServer(telemetry=Telemetry(), port=0) as server:
            out = list(corrected_stream(iter(_frames(rng, 2)), small_field,
                                        copy=True, serve_metrics=server))
            assert len(out) == 2
            assert server.running  # caller owns the lifetime
        assert not server.running
