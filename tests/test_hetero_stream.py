"""Tests: end-to-end pipeline model and the software-pipelined stream."""

import numpy as np
import pytest

from repro.accel.hetero import PipelineModel, Stage, gpu_application_pipeline
from repro.accel.platform import Workload
from repro.accel.presets import gtx280
from repro.core.pipeline import FisheyeCorrector
from repro.parallel.stream import pipelined_stream
from repro.errors import PlatformError, ScheduleError


class TestPipelineModel:
    def _pipe(self):
        return PipelineModel([
            Stage("decode", 4_000_000, "host"),
            Stage("h2d", 2_000_000, "pcie"),
            Stage("kernel", 1_000_000, "device"),
            Stage("d2h", 2_000_000, "pcie"),
            Stage("encode", 3_000_000, "host"),
        ])

    def test_bottleneck_is_busiest_resource(self):
        pipe = self._pipe()
        # host: 7 ms, pcie: 4 ms, device: 1 ms
        assert pipe.bottleneck == "host"
        assert pipe.interval_ns == 7_000_000
        assert pipe.fps == pytest.approx(1e9 / 7e6)

    def test_latency_is_stage_sum(self):
        assert self._pipe().latency_ns == 12_000_000

    def test_frames_in_flight(self):
        assert self._pipe().frames_in_flight == 2  # ceil(12/7)

    def test_utilization_bottleneck_is_one(self):
        util = self._pipe().utilization()
        assert util["host"] == pytest.approx(1.0)
        assert util["device"] < 0.2

    def test_shared_resource_serializes(self):
        shared = PipelineModel([Stage("a", 5, "bus"), Stage("b", 5, "bus")])
        split = PipelineModel([Stage("a", 5, "up"), Stage("b", 5, "down")])
        assert shared.interval_ns == 10
        assert split.interval_ns == 5

    def test_describe_mentions_bottleneck(self):
        assert "bottleneck host" in self._pipe().describe()

    def test_validation(self):
        with pytest.raises(PlatformError):
            PipelineModel([])
        with pytest.raises(PlatformError):
            PipelineModel([Stage("a", 1, "x"), Stage("a", 1, "y")])
        with pytest.raises(PlatformError):
            Stage("a", -1, "x")
        with pytest.raises(PlatformError):
            Stage("a", 1, "")


class TestGPUApplication:
    @pytest.fixture()
    def workload(self, small_field):
        return Workload.from_field(small_field, mode="lut")

    def test_kernel_speedup_is_not_app_speedup(self, workload):
        """The headline hetero result: a fast kernel hides behind the
        host codec stages."""
        gpu = gtx280()
        kernel_only = gpu.estimate_frame(workload, overlap_transfers=True)
        app = gpu_application_pipeline(gpu, workload,
                                       decode_ns=3_000_000, encode_ns=4_000_000)
        assert app.fps < kernel_only.fps
        assert app.bottleneck == "host"

    def test_full_duplex_helps_transfer_bound_pipes(self, workload):
        gpu = gtx280()
        half = gpu_application_pipeline(gpu, workload, decode_ns=0, encode_ns=0,
                                        full_duplex_pcie=False)
        full = gpu_application_pipeline(gpu, workload, decode_ns=0, encode_ns=0,
                                        full_duplex_pcie=True)
        assert full.fps >= half.fps

    def test_validation(self, workload):
        with pytest.raises(PlatformError):
            gpu_application_pipeline(gtx280(), workload, decode_ns=-1, encode_ns=0)


class TestPipelinedStream:
    def test_matches_sequential_results(self, small_field, rng):
        corrector = FisheyeCorrector(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8)
                  for _ in range(6)]
        expected = [corrector.correct(f) for f in frames]
        got = list(pipelined_stream(corrector, frames, depth=3))
        assert len(got) == 6
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_order_preserved_with_generator_source(self, small_field, rng):
        corrector = FisheyeCorrector(small_field)

        def source():
            for i in range(5):
                frame = np.full((64, 64), i * 40, dtype=np.uint8)
                yield frame

        outs = list(pipelined_stream(corrector, source(), depth=2))
        # constant frames correct to (nearly) constant frames: order is
        # recoverable from the values
        levels = [int(np.median(o)) for o in outs]
        assert levels == sorted(levels)

    def test_frame_objects_pass_through(self, small_field, random_image):
        from repro.core.image import GRAY8, Frame

        corrector = FisheyeCorrector(small_field)
        frames = [Frame(random_image, GRAY8, index=i) for i in range(3)]
        outs = list(pipelined_stream(corrector, frames, depth=2))
        assert [f.index for f in outs] == [0, 1, 2]

    def test_buffers_are_independent(self, small_field, rng):
        corrector = FisheyeCorrector(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8)
                  for _ in range(4)]
        outs = list(pipelined_stream(corrector, frames, depth=2))
        assert len({id(o) for o in outs}) == 4  # no buffer reuse

    def test_depth_one_works(self, small_field, random_image):
        corrector = FisheyeCorrector(small_field)
        outs = list(pipelined_stream(corrector, [random_image], depth=1))
        assert len(outs) == 1

    def test_empty_stream(self, small_field):
        corrector = FisheyeCorrector(small_field)
        assert list(pipelined_stream(corrector, [], depth=2)) == []

    def test_validation(self, small_field):
        corrector = FisheyeCorrector(small_field)
        with pytest.raises(ScheduleError):
            list(pipelined_stream(corrector, [], depth=0))

    def test_depth_capped(self, small_field):
        from repro.parallel.stream import MAX_STREAM_DEPTH

        corrector = FisheyeCorrector(small_field)
        with pytest.raises(ScheduleError, match="MAX_STREAM_DEPTH"):
            list(pipelined_stream(corrector, [], depth=MAX_STREAM_DEPTH + 1))
        # the cap itself is fine
        outs = list(pipelined_stream(corrector, [], depth=MAX_STREAM_DEPTH))
        assert outs == []

    def test_telemetry_matches_corrected_stream_surface(self, small_field, rng):
        from repro.obs.telemetry import Telemetry, scoped

        corrector = FisheyeCorrector(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8)
                  for _ in range(4)]
        tel = Telemetry()
        with scoped(tel):
            list(pipelined_stream(corrector, frames, depth=2))
        snap = tel.snapshot()
        assert snap["counters"]["stream.frames"] == 4
        assert snap["histograms"]["stream.frame_seconds"]["count"] == 4
        assert snap["gauges"]["stream.fps"] > 0
        assert sum(1 for s in tel.spans if s["name"] == "stream.frame") == 4

    def test_corrector_engine_pipelined(self, small_field, rng):
        from repro.core.pipeline import StreamStats

        corrector = FisheyeCorrector(small_field)
        frames = [rng.integers(0, 255, (64, 64), dtype=np.uint8)
                  for _ in range(5)]
        expected = [corrector.correct(f) for f in frames]
        stats = StreamStats()
        got = list(corrector.correct_stream(frames, stats=stats,
                                            engine="pipelined", depth=2))
        assert stats.frames == 5
        for e, g in zip(expected, got):
            np.testing.assert_array_equal(e, g)

    def test_worker_exception_propagates(self, small_field):
        corrector = FisheyeCorrector(small_field)
        frames = [np.zeros((10, 10), dtype=np.uint8)]  # wrong geometry
        with pytest.raises(Exception):
            list(pipelined_stream(corrector, frames, depth=2))
