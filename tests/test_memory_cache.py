"""Memory-system model tests: links, shared bus, cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import CacheConfig, CacheSim
from repro.sim.memory import Link, SharedBus
from repro.errors import SimulationError


class TestLink:
    def test_transfer_time_includes_setup(self):
        link = Link("dma", bandwidth_gbps=1.0, setup_ns=100)
        # 1 GB/s == 1 byte/ns
        assert link.transfer_ns(1000) == 1100

    def test_zero_bytes_free(self):
        link = Link("dma", 1.0, setup_ns=100)
        assert link.transfer_ns(0) == 0

    def test_effective_bandwidth_approaches_peak(self):
        link = Link("dma", 10.0, setup_ns=1000)
        small = link.effective_gbps(100)
        large = link.effective_gbps(10_000_000)
        assert small < large <= 10.0 + 1e-9

    def test_validation(self):
        with pytest.raises(SimulationError):
            Link("x", 0.0)
        with pytest.raises(SimulationError):
            Link("x", 1.0, setup_ns=-5)
        with pytest.raises(SimulationError):
            Link("x", 1.0).transfer_ns(-1)


class TestSharedBus:
    def test_serializes_overlapping_transfers(self):
        bus = SharedBus("eib", 1.0)  # 1 byte/ns
        s1, e1 = bus.request(0, 100)
        s2, e2 = bus.request(0, 100)
        assert (s1, e1) == (0, 100)
        assert (s2, e2) == (100, 200)

    def test_idle_gap_respected(self):
        bus = SharedBus("eib", 1.0)
        bus.request(0, 10)
        s, e = bus.request(500, 10)
        assert s == 500 and e == 510

    def test_busy_accounting(self):
        bus = SharedBus("eib", 2.0, setup_ns=10)
        bus.request(0, 100)
        bus.request(0, 100)
        assert bus.transfers == 2
        assert bus.bytes_moved == 200
        assert bus.busy_ns == 2 * (10 + 50)

    def test_utilization(self):
        bus = SharedBus("eib", 1.0)
        bus.request(0, 100)
        assert bus.utilization(200) == pytest.approx(0.5)

    def test_reset(self):
        bus = SharedBus("eib", 1.0)
        bus.request(0, 50)
        bus.reset()
        assert bus.busy_ns == 0
        assert bus.request(0, 10)[0] == 0

    def test_validation(self):
        with pytest.raises(SimulationError):
            SharedBus("x", -1.0)
        bus = SharedBus("x", 1.0)
        with pytest.raises(SimulationError):
            bus.request(-1, 10)
        with pytest.raises(SimulationError):
            bus.utilization(0)


class TestCacheConfig:
    def test_sets_computed(self):
        cfg = CacheConfig(size_bytes=32 * 1024, line_bytes=64, ways=8)
        assert cfg.sets == 64

    def test_validation(self):
        with pytest.raises(SimulationError):
            CacheConfig(size_bytes=0)
        with pytest.raises(SimulationError):
            CacheConfig(size_bytes=1024, line_bytes=48)  # not power of two
        with pytest.raises(SimulationError):
            CacheConfig(size_bytes=1000, line_bytes=64, ways=8)  # not divisible
        with pytest.raises(SimulationError):
            CacheConfig(size_bytes=64 * 3 * 8, line_bytes=64, ways=8)  # 3 sets


class TestCacheSim:
    def cfg(self, **kw):
        defaults = dict(size_bytes=1024, line_bytes=64, ways=2)
        defaults.update(kw)
        return CacheConfig(**defaults)

    def test_cold_miss_then_hit(self):
        sim = CacheSim(self.cfg())
        stats = sim.access(np.array([0, 0, 0]))
        assert stats.accesses == 3
        assert stats.hits == 2
        assert stats.misses == 1

    def test_same_line_hits(self):
        sim = CacheSim(self.cfg())
        stats = sim.access(np.array([0, 63, 32]))
        assert stats.misses == 1

    def test_different_lines_miss(self):
        sim = CacheSim(self.cfg())
        stats = sim.access(np.array([0, 64, 128]))
        assert stats.misses == 3

    def test_lru_eviction(self):
        # 2-way set: three conflicting lines evict the least recent
        cfg = self.cfg()
        sets = cfg.sets
        stride = cfg.line_bytes * sets  # same set, different tags
        sim = CacheSim(cfg)
        a, b, c = 0, stride, 2 * stride
        sim.access(np.array([a, b]))        # both resident
        sim.access(np.array([c]))           # evicts a (LRU)
        stats = sim.access(np.array([b]))   # b still resident -> hit
        assert stats.hits == 1
        stats = sim.access(np.array([a]))   # a evicted -> miss
        assert stats.hits == 1

    def test_working_set_fits(self):
        cfg = self.cfg(size_bytes=4096, ways=4)
        sim = CacheSim(cfg)
        addrs = np.arange(0, 4096, 64)
        sim.access(addrs)              # cold fill
        stats = sim.access(addrs)      # now everything hits
        assert stats.hit_rate == pytest.approx((64 * 2 - 64) / 128)

    def test_replay_resets(self):
        sim = CacheSim(self.cfg())
        sim.access(np.array([0]))
        stats = sim.replay(np.array([0]))
        assert stats.accesses == 1
        assert stats.misses == 1

    def test_negative_addresses_rejected(self):
        sim = CacheSim(self.cfg())
        with pytest.raises(SimulationError):
            sim.access(np.array([-64]))

    def test_miss_bytes(self):
        sim = CacheSim(self.cfg())
        stats = sim.replay(np.array([0, 64, 128]))
        assert stats.miss_bytes(64) == 192


@given(seed=st.integers(0, 500), size_kb=st.sampled_from([1, 2, 4]))
@settings(max_examples=25, deadline=None)
def test_property_more_ways_never_hurt(seed, size_kb):
    """Growing associativity at a fixed set count never loses hits.

    This is the LRU stack-inclusion property per set; it only holds
    when the set count stays constant, hence ways scale with size.
    """
    rng = np.random.default_rng(seed)
    trace = rng.integers(0, 8192, size=300)
    small = CacheSim(CacheConfig(size_kb * 1024, 64, 2)).replay(trace)
    large = CacheSim(CacheConfig(size_kb * 4 * 1024, 64, 8)).replay(trace)
    assert large.hits >= small.hits
