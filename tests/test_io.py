"""PGM/PPM/NPY file I/O tests."""

import numpy as np
import pytest

from repro.video.io import read_npy, read_pgm, read_ppm, write_npy, write_pgm, write_ppm
from repro.errors import ImageFormatError


class TestPGM:
    def test_roundtrip(self, tmp_path, random_image):
        path = tmp_path / "img.pgm"
        write_pgm(path, random_image)
        back = read_pgm(path)
        np.testing.assert_array_equal(back, random_image)

    def test_header_format(self, tmp_path):
        path = tmp_path / "img.pgm"
        write_pgm(path, np.zeros((2, 3), dtype=np.uint8))
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n3 2\n255\n")
        assert len(raw) == len(b"P5\n3 2\n255\n") + 6

    def test_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "c.pgm"
        payload = bytes(range(6))
        path.write_bytes(b"P5\n# a comment\n3 2\n255\n" + payload)
        img = read_pgm(path)
        assert img.shape == (2, 3)
        assert img[1, 2] == 5

    def test_rejects_color_input(self, tmp_path, rgb_image):
        with pytest.raises(ImageFormatError):
            write_pgm(tmp_path / "x.pgm", rgb_image)

    def test_rejects_wrong_dtype(self, tmp_path):
        with pytest.raises(ImageFormatError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2), dtype=np.float32))

    def test_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x00")
        with pytest.raises(ImageFormatError):
            read_pgm(path)

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "w.pgm"
        path.write_bytes(b"P6\n1 1\n255\n\x00\x00\x00")
        with pytest.raises(ImageFormatError):
            read_pgm(path)


class TestPPM:
    def test_roundtrip(self, tmp_path, rgb_image):
        path = tmp_path / "img.ppm"
        write_ppm(path, rgb_image)
        np.testing.assert_array_equal(read_ppm(path), rgb_image)

    def test_rejects_gray(self, tmp_path, random_image):
        with pytest.raises(ImageFormatError):
            write_ppm(tmp_path / "x.ppm", random_image)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "t.ppm"
        path.write_bytes(b"P6\n2 2\n255\n\x00")
        with pytest.raises(ImageFormatError):
            read_ppm(path)


class TestNPY:
    def test_roundtrip_float(self, tmp_path, rng):
        arr = rng.normal(size=(5, 7))
        path = tmp_path / "a.npy"
        write_npy(path, arr)
        np.testing.assert_array_equal(read_npy(path), arr)

    def test_no_pickle(self, tmp_path):
        path = tmp_path / "b.npy"
        np.save(path, np.array([{"a": 1}], dtype=object), allow_pickle=True)
        with pytest.raises(ValueError):
            read_npy(path)
